#include "obs/stats_registry.h"

#include <cstdlib>
#include <fstream>

#include "util/strings.h"

namespace probkb {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

double SkewOf(const std::vector<int64_t>& per_segment) {
  if (per_segment.empty()) return 0.0;
  int64_t max = 0;
  int64_t sum = 0;
  for (int64_t v : per_segment) {
    if (v > max) max = v;
    sum += v;
  }
  if (sum == 0) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(per_segment.size());
  return static_cast<double>(max) / mean;
}

}  // namespace

StatsRegistry::StatsRegistry()
    : trace_base_(std::chrono::steady_clock::now()) {
  if (const char* path = std::getenv("PROBKB_TRACE")) {
    if (path[0] != '\0') trace_path_ = path;
  }
}

void StatsRegistry::Trace(const std::string& name,
                          const std::string& category, double seconds,
                          int lane) {
  if (trace_path_.empty()) return;
  const int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - trace_base_)
                             .count();
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.dur_us = static_cast<int64_t>(seconds * 1e6);
  if (ev.dur_us < 0) ev.dur_us = 0;
  ev.ts_us = now_us - ev.dur_us;
  if (ev.ts_us < 0) ev.ts_us = 0;
  ev.lane = lane;
  trace_events_.push_back(std::move(ev));
}

void StatsRegistry::RecordOp(const std::string& scope, const OpRecord& op) {
  auto [it, inserted] = statement_index_.emplace(scope, statements_.size());
  if (inserted) {
    statements_.push_back({scope, {}});
  }
  statements_[it->second].ops.push_back(op);

  auto [tot_it, tot_inserted] = op_index_.emplace(op.label, op_totals_.size());
  if (tot_inserted) {
    OpTotals t;
    t.label = op.label;
    op_totals_.push_back(std::move(t));
  }
  OpTotals& t = op_totals_[tot_it->second];
  ++t.invocations;
  t.rows_in += op.rows_in;
  t.rows_out += op.rows_out;
  t.seconds += op.seconds;
  t.build_seconds += op.build_seconds;
  t.probe_seconds += op.probe_seconds;
  t.rehashes += op.rehashes;
  if (op.build_partitions > t.max_build_partitions) {
    t.max_build_partitions = op.build_partitions;
  }

  if (op.build_seconds > 0) {
    RecordLatency("join_build", op.build_seconds);
  }
  if (op.probe_seconds > 0) {
    RecordLatency("join_probe", op.probe_seconds);
  }

  Trace(op.label, "op/" + scope, op.seconds, 0);
}

void StatsRegistry::RecordPartitionIteration(int iteration, int partition,
                                             int64_t delta_rows,
                                             double join_seconds) {
  const int64_t key =
      static_cast<int64_t>(iteration) * 64 + static_cast<int64_t>(partition);
  auto [it, inserted] =
      partition_index_.emplace(key, partition_iterations_.size());
  if (inserted) {
    PartitionIterStats cell;
    cell.iteration = iteration;
    cell.partition = partition;
    partition_iterations_.push_back(cell);
  }
  PartitionIterStats& cell = partition_iterations_[it->second];
  cell.delta_rows += delta_rows;
  cell.join_seconds += join_seconds;
  ++cell.statements;

  Trace(StrFormat("iter%d/M%d", iteration, partition), "partition",
        join_seconds, 2);
}

void StatsRegistry::RecordMotion(const std::string& label,
                                 const std::string& kind,
                                 int64_t tuples_shipped, int64_t bytes_shipped,
                                 double seconds,
                                 const std::vector<int64_t>& per_segment_rows) {
  const std::string key = kind + "/" + label;
  auto [it, inserted] = motion_index_.emplace(key, motion_totals_.size());
  if (inserted) {
    MotionTotals t;
    t.label = label;
    t.kind = kind;
    motion_totals_.push_back(std::move(t));
  }
  MotionTotals& t = motion_totals_[it->second];
  ++t.count;
  t.tuples_shipped += tuples_shipped;
  t.bytes_shipped += bytes_shipped;
  t.seconds += seconds;
  const double skew = SkewOf(per_segment_rows);
  if (skew > t.max_skew) t.max_skew = skew;
  for (int64_t v : per_segment_rows) {
    if (v > t.max_segment_tuples) t.max_segment_tuples = v;
  }
  RecordLatency("motion_ship", seconds);

  Trace(label, "motion/" + kind, seconds, 1);
}

void StatsRegistry::RecordCompute(const std::string& label,
                                  double max_seconds,
                                  double total_work_seconds,
                                  int num_segments) {
  auto [it, inserted] = compute_index_.emplace(label, compute_totals_.size());
  if (inserted) {
    ComputeTotals t;
    t.label = label;
    compute_totals_.push_back(std::move(t));
  }
  ComputeTotals& t = compute_totals_[it->second];
  ++t.count;
  t.seconds += max_seconds;
  t.total_work_seconds += total_work_seconds;
  if (num_segments > 0 && total_work_seconds > 0) {
    const double mean = total_work_seconds / num_segments;
    const double skew = mean > 0 ? max_seconds / mean : 0.0;
    if (skew > t.max_skew) t.max_skew = skew;
  }

  Trace(label, "compute", max_seconds, 1);
}

void StatsRegistry::RecordWorkers(const std::vector<WorkerTotals>& workers) {
  workers_ = workers;
}

void StatsRegistry::RecordGibbsChain(int chain, int64_t sweeps,
                                     int64_t num_variables, double seconds) {
  GibbsChainStats s;
  s.chain = chain;
  s.sweeps = sweeps;
  s.seconds = seconds;
  s.samples_per_sec =
      seconds > 0 ? static_cast<double>(sweeps) *
                        static_cast<double>(num_variables) / seconds
                  : 0.0;
  gibbs_chains_.push_back(s);
  Trace(StrFormat("gibbs chain %d", chain), "gibbs", seconds, 3);
}

void StatsRegistry::RecordLatency(const std::string& name, double seconds,
                                  uint64_t exemplar_trace) {
  auto [it, inserted] = latency_index_.emplace(name, latencies_.size());
  if (inserted) {
    latencies_.emplace_back(name, LatencyHistogram());
  }
  latencies_[it->second].second.Record(seconds, exemplar_trace);
}

const LatencyHistogram* StatsRegistry::FindLatency(
    const std::string& name) const {
  auto it = latency_index_.find(name);
  return it == latency_index_.end() ? nullptr
                                    : &latencies_[it->second].second;
}

void StatsRegistry::IncrementCounter(const std::string& name,
                                     int64_t delta) {
  auto [it, inserted] = counter_index_.emplace(name, counters_.size());
  if (inserted) {
    counters_.emplace_back(name, 0);
  }
  counters_[it->second].second += delta;
}

int64_t StatsRegistry::FindCounter(const std::string& name) const {
  auto it = counter_index_.find(name);
  return it == counter_index_.end() ? -1 : counters_[it->second].second;
}

std::string StatsRegistry::ToText() const {
  std::string out = "=== execution statistics ===\n";

  if (!op_totals_.empty()) {
    out += "operators (aggregated over all statements):\n";
    out += StrFormat("  %-34s %5s %12s %12s %10s %9s %9s %4s\n", "operator",
                     "calls", "rows_in", "rows_out", "seconds", "build",
                     "probe", "reh");
    for (const OpTotals& t : op_totals_) {
      out += StrFormat(
          "  %-34s %5lld %12lld %12lld %10.4f %9.4f %9.4f %4lld\n",
          t.label.c_str(), static_cast<long long>(t.invocations),
          static_cast<long long>(t.rows_in),
          static_cast<long long>(t.rows_out), t.seconds, t.build_seconds,
          t.probe_seconds, static_cast<long long>(t.rehashes));
    }
  }

  if (!partition_iterations_.empty()) {
    out += "fixpoint partitions (delta rows / join seconds):\n";
    for (const PartitionIterStats& c : partition_iterations_) {
      out += StrFormat("  iter %-3d M%d  +%-10lld %8.4fs\n", c.iteration,
                       c.partition, static_cast<long long>(c.delta_rows),
                       c.join_seconds);
    }
  }

  if (!motion_totals_.empty()) {
    out += "motions:\n";
    for (const MotionTotals& t : motion_totals_) {
      out += StrFormat(
          "  %-12s %-28s x%-4lld %12lld tuples %12lld bytes %8.4fs"
          " skew %.2f\n",
          t.kind.c_str(), t.label.c_str(), static_cast<long long>(t.count),
          static_cast<long long>(t.tuples_shipped),
          static_cast<long long>(t.bytes_shipped), t.seconds, t.max_skew);
    }
  }

  if (!compute_totals_.empty()) {
    out += "segment compute phases:\n";
    for (const ComputeTotals& t : compute_totals_) {
      out += StrFormat(
          "  %-40s x%-4lld %8.4fs elapsed %8.4fs work  skew %.2f\n",
          t.label.c_str(), static_cast<long long>(t.count), t.seconds,
          t.total_work_seconds, t.max_skew);
    }
  }

  if (!workers_.empty()) {
    out += "pool workers:\n";
    for (const WorkerTotals& w : workers_) {
      out += StrFormat(
          "  worker %-3d %8lld tasks %6lld steals %8.3fs busy %8.3fs idle\n",
          w.worker, static_cast<long long>(w.tasks_run),
          static_cast<long long>(w.steals), w.busy_seconds, w.idle_seconds);
    }
  }

  if (!gibbs_chains_.empty()) {
    out += "gibbs chains:\n";
    for (const GibbsChainStats& c : gibbs_chains_) {
      out += StrFormat(
          "  chain %-3d %10lld samples %8.3fs  %12.0f samples/s\n", c.chain,
          static_cast<long long>(c.sweeps), c.seconds, c.samples_per_sec);
    }
  }

  if (!latencies_.empty()) {
    out += "latency histograms:\n";
    out += StrFormat("  %-22s %10s %10s %10s %10s %10s %10s\n", "series",
                     "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
                     "max_ms");
    for (const auto& [name, hist] : latencies_) {
      const double mean_ms =
          hist.count() > 0
              ? hist.sum_seconds() / static_cast<double>(hist.count()) * 1e3
              : 0.0;
      out += StrFormat(
          "  %-22s %10lld %10.3f %10.3f %10.3f %10.3f %10.3f", name.c_str(),
          static_cast<long long>(hist.count()), mean_ms,
          hist.Percentile(50) * 1e3, hist.Percentile(95) * 1e3,
          hist.Percentile(99) * 1e3, hist.max_seconds() * 1e3);
      if (hist.tail_exemplar() != 0) {
        out += StrFormat("  trace=%016llx",
                         static_cast<unsigned long long>(
                             hist.tail_exemplar()));
      }
      out += '\n';
    }
  }

  if (!counters_.empty()) {
    out += "counters:\n";
    for (const auto& [name, value] : counters_) {
      out += StrFormat("  %-22s %lld\n", name.c_str(),
                       static_cast<long long>(value));
    }
  }

  if (!statements_.empty()) {
    out += "statement plans (EXPLAIN ANALYZE):\n";
    for (const StatementTrace& st : statements_) {
      out += "  [" + st.scope + "]\n";
      // Records are post-order with child counts; rebuild the tree and
      // print it parent-first. `subtree[i]` is the rendered text of the
      // subtree rooted at record i, built bottom-up over a stack.
      std::vector<std::string> stack;
      for (const OpRecord& op : st.ops) {
        std::string node = StrFormat(
            "%s  rows_in=%lld rows_out=%lld %.3fms", op.label.c_str(),
            static_cast<long long>(op.rows_in),
            static_cast<long long>(op.rows_out), op.seconds * 1e3);
        if (op.build_seconds > 0 || op.probe_seconds > 0 || op.rehashes > 0) {
          node += StrFormat(" (build %.3fms, probe %.3fms, rehashes %lld)",
                            op.build_seconds * 1e3, op.probe_seconds * 1e3,
                            static_cast<long long>(op.rehashes));
        }
        if (op.build_partitions > 1) {
          node += StrFormat(" [build x%d]", op.build_partitions);
        }
        node += "\n";
        int children = op.num_children;
        if (children > static_cast<int>(stack.size())) {
          children = static_cast<int>(stack.size());  // malformed; clamp
        }
        std::string rendered = node;
        for (size_t k = stack.size() - static_cast<size_t>(children);
             k < stack.size(); ++k) {
          // Indent the child subtree by two spaces per line.
          const std::string& sub = stack[k];
          size_t pos = 0;
          while (pos < sub.size()) {
            size_t eol = sub.find('\n', pos);
            if (eol == std::string::npos) eol = sub.size();
            rendered += "  " + sub.substr(pos, eol - pos) + "\n";
            pos = eol + 1;
          }
        }
        stack.resize(stack.size() - static_cast<size_t>(children));
        stack.push_back(std::move(rendered));
      }
      for (const std::string& root : stack) {
        size_t pos = 0;
        while (pos < root.size()) {
          size_t eol = root.find('\n', pos);
          if (eol == std::string::npos) eol = root.size();
          out += "    " + root.substr(pos, eol - pos) + "\n";
          pos = eol + 1;
        }
      }
    }
  }
  return out;
}

std::string StatsRegistry::ToJson() const {
  std::string out = "{\n  \"statements\": [";
  for (size_t i = 0; i < statements_.size(); ++i) {
    const StatementTrace& st = statements_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"scope\": \"" + JsonEscape(st.scope) + "\", \"ops\": [";
    for (size_t j = 0; j < st.ops.size(); ++j) {
      const OpRecord& op = st.ops[j];
      out += j == 0 ? "\n" : ",\n";
      out += StrFormat(
          "      {\"label\": \"%s\", \"rows_in\": %lld, \"rows_out\": %lld,"
          " \"seconds\": %.6f, \"build_seconds\": %.6f,"
          " \"probe_seconds\": %.6f, \"rehashes\": %lld,"
          " \"build_partitions\": %d, \"num_children\": %d}",
          JsonEscape(op.label).c_str(), static_cast<long long>(op.rows_in),
          static_cast<long long>(op.rows_out), op.seconds, op.build_seconds,
          op.probe_seconds, static_cast<long long>(op.rehashes),
          op.build_partitions, op.num_children);
    }
    out += st.ops.empty() ? "]}" : "\n    ]}";
  }
  out += statements_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"operators\": [";
  for (size_t i = 0; i < op_totals_.size(); ++i) {
    const OpTotals& t = op_totals_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"label\": \"%s\", \"invocations\": %lld, \"rows_in\": %lld,"
        " \"rows_out\": %lld, \"seconds\": %.6f, \"build_seconds\": %.6f,"
        " \"probe_seconds\": %.6f, \"rehashes\": %lld,"
        " \"max_build_partitions\": %d}",
        JsonEscape(t.label).c_str(), static_cast<long long>(t.invocations),
        static_cast<long long>(t.rows_in), static_cast<long long>(t.rows_out),
        t.seconds, t.build_seconds, t.probe_seconds,
        static_cast<long long>(t.rehashes), t.max_build_partitions);
  }
  out += op_totals_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"partitions\": [";
  for (size_t i = 0; i < partition_iterations_.size(); ++i) {
    const PartitionIterStats& c = partition_iterations_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"iteration\": %d, \"partition\": %d, \"delta_rows\": %lld,"
        " \"join_seconds\": %.6f, \"statements\": %lld}",
        c.iteration, c.partition, static_cast<long long>(c.delta_rows),
        c.join_seconds, static_cast<long long>(c.statements));
  }
  out += partition_iterations_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"motions\": [";
  for (size_t i = 0; i < motion_totals_.size(); ++i) {
    const MotionTotals& t = motion_totals_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"label\": \"%s\", \"kind\": \"%s\", \"count\": %lld,"
        " \"tuples_shipped\": %lld, \"bytes_shipped\": %lld,"
        " \"seconds\": %.6f, \"max_skew\": %.4f,"
        " \"max_segment_tuples\": %lld}",
        JsonEscape(t.label).c_str(), JsonEscape(t.kind).c_str(),
        static_cast<long long>(t.count),
        static_cast<long long>(t.tuples_shipped),
        static_cast<long long>(t.bytes_shipped), t.seconds, t.max_skew,
        static_cast<long long>(t.max_segment_tuples));
  }
  out += motion_totals_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"compute\": [";
  for (size_t i = 0; i < compute_totals_.size(); ++i) {
    const ComputeTotals& t = compute_totals_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"label\": \"%s\", \"count\": %lld, \"seconds\": %.6f,"
        " \"total_work_seconds\": %.6f, \"max_skew\": %.4f}",
        JsonEscape(t.label).c_str(), static_cast<long long>(t.count),
        t.seconds, t.total_work_seconds, t.max_skew);
  }
  out += compute_totals_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"workers\": [";
  for (size_t i = 0; i < workers_.size(); ++i) {
    const WorkerTotals& w = workers_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"worker\": %d, \"tasks_run\": %lld, \"steals\": %lld,"
        " \"busy_seconds\": %.6f, \"idle_seconds\": %.6f}",
        w.worker, static_cast<long long>(w.tasks_run),
        static_cast<long long>(w.steals), w.busy_seconds, w.idle_seconds);
  }
  out += workers_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"gibbs_chains\": [";
  for (size_t i = 0; i < gibbs_chains_.size(); ++i) {
    const GibbsChainStats& c = gibbs_chains_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"chain\": %d, \"sweeps\": %lld, \"seconds\": %.6f,"
        " \"samples_per_sec\": %.2f}",
        c.chain, static_cast<long long>(c.sweeps), c.seconds,
        c.samples_per_sec);
  }
  out += gibbs_chains_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"latencies\": [";
  for (size_t i = 0; i < latencies_.size(); ++i) {
    const auto& [name, hist] = latencies_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"name\": \"%s\", \"count\": %lld, \"sum_seconds\": %.6f,"
        " \"p50_s\": %.6f, \"p95_s\": %.6f, \"p99_s\": %.6f,"
        " \"max_s\": %.6f, \"tail_exemplar\": \"%016llx\"}",
        JsonEscape(name).c_str(), static_cast<long long>(hist.count()),
        hist.sum_seconds(), hist.Percentile(50), hist.Percentile(95),
        hist.Percentile(99), hist.max_seconds(),
        static_cast<unsigned long long>(hist.tail_exemplar()));
  }
  out += latencies_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"counters\": [";
  for (size_t i = 0; i < counters_.size(); ++i) {
    const auto& [name, value] = counters_[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat("    {\"name\": \"%s\", \"value\": %lld}",
                     JsonEscape(name).c_str(),
                     static_cast<long long>(value));
  }
  out += counters_.empty() ? "]\n" : "\n  ]\n";

  out += "}\n";
  return out;
}

Status StatsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open stats file '" + path + "' for write");
  }
  out << ToJson();
  if (!out.good()) return Status::IOError("stats write to '" + path +
                                          "' failed");
  return Status::OK();
}

namespace {
/// Prometheus metric-name charset is [a-zA-Z0-9_:]; anything else folds to
/// an underscore so a series name like "query2/M1" still exposes cleanly.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& ch : out) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    if (!ok) ch = '_';
  }
  return out;
}
}  // namespace

std::string StatsRegistry::ToPrometheusText() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    const std::string metric = "probkb_" + PromName(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += StrFormat("%s %lld\n", metric.c_str(),
                     static_cast<long long>(value));
  }
  if (!latencies_.empty()) {
    out += "# TYPE probkb_latency_seconds summary\n";
    for (const auto& [name, hist] : latencies_) {
      const std::string series = PromName(name);
      out += StrFormat(
          "probkb_latency_seconds{series=\"%s\",quantile=\"0.5\"} %.9f\n",
          series.c_str(), hist.Percentile(50));
      out += StrFormat(
          "probkb_latency_seconds{series=\"%s\",quantile=\"0.95\"} %.9f\n",
          series.c_str(), hist.Percentile(95));
      out += StrFormat(
          "probkb_latency_seconds{series=\"%s\",quantile=\"0.99\"} %.9f\n",
          series.c_str(), hist.Percentile(99));
      out += StrFormat("probkb_latency_seconds_sum{series=\"%s\"} %.9f\n",
                       series.c_str(), hist.sum_seconds());
      out += StrFormat("probkb_latency_seconds_count{series=\"%s\"} %lld\n",
                       series.c_str(),
                       static_cast<long long>(hist.count()));
    }
    bool exemplar_header = false;
    for (const auto& [name, hist] : latencies_) {
      if (hist.tail_exemplar() == 0) continue;
      if (!exemplar_header) {
        out += "# TYPE probkb_latency_tail_exemplar_info gauge\n";
        exemplar_header = true;
      }
      out += StrFormat(
          "probkb_latency_tail_exemplar_info{series=\"%s\","
          "trace_id=\"%016llx\"} 1\n",
          PromName(name).c_str(),
          static_cast<unsigned long long>(hist.tail_exemplar()));
    }
  }
  return out;
}

Status StatsRegistry::WriteTraceIfEnabled() const {
  if (trace_path_.empty()) return Status::OK();
  std::ofstream out(trace_path_);
  if (!out) {
    return Status::IOError("cannot open trace file '" + trace_path_ +
                           "' for write");
  }
  out << "{\"traceEvents\": [";
  for (size_t i = 0; i < trace_events_.size(); ++i) {
    const TraceEvent& ev = trace_events_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << StrFormat(
        "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\","
        " \"ts\": %lld, \"dur\": %lld, \"pid\": 0, \"tid\": %d}",
        JsonEscape(ev.name).c_str(), JsonEscape(ev.category).c_str(),
        static_cast<long long>(ev.ts_us), static_cast<long long>(ev.dur_us),
        ev.lane);
  }
  out << (trace_events_.empty() ? "]}\n" : "\n]}\n");
  if (!out.good()) return Status::IOError("trace write failed");
  return Status::OK();
}

}  // namespace probkb
