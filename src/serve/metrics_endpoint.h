#ifndef PROBKB_SERVE_METRICS_ENDPOINT_H_
#define PROBKB_SERVE_METRICS_ENDPOINT_H_

#include <atomic>
#include <string>
#include <thread>

#include "serve/query_server.h"
#include "util/status.h"

namespace probkb {

/// \brief Live telemetry endpoint: a Unix-domain socket serving
/// Prometheus-text-format snapshots of a QueryServer's StatsRegistry over
/// the runtime's length-prefixed wire framing.
///
/// Protocol: a client connects, sends any number of kMetricsRequest frames
/// (empty payload), and receives one kMetricsReply per request whose
/// payload is QueryServer::PrometheusText() captured at reply time. The
/// framing (checksummed FrameHeader + payload) is exactly the supervisor
/// <-> worker wire format, so `tools/probkb_top` and the workers share one
/// codec. One connection is served at a time — telemetry polls are rare
/// and cheap, so a backlog queue suffices and the endpoint never spawns
/// per-connection threads.
///
/// The accept loop runs on a background thread with a short poll timeout,
/// so Stop() (or destruction) joins promptly without needing to poke the
/// socket. The QueryServer must outlive the endpoint.
class MetricsEndpoint {
 public:
  MetricsEndpoint(const QueryServer* server, std::string socket_path);
  ~MetricsEndpoint();

  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  /// \brief Binds the socket (unlinking any stale file at the path) and
  /// starts the accept thread. InvalidArgument if the path exceeds
  /// sockaddr_un limits, IOError on bind/listen failure.
  Status Start();

  /// \brief Stops the accept thread and unlinks the socket file.
  /// Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// \brief Requests served since Start() (across all connections).
  int64_t polls_served() const {
    return polls_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  const QueryServer* server_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> polls_served_{0};
};

}  // namespace probkb

#endif  // PROBKB_SERVE_METRICS_ENDPOINT_H_
