#include "serve/query_server.h"

#include <algorithm>

#include "obs/trace.h"
#include "relational/catalog.h"
#include "util/strings.h"
#include "util/timer.h"

namespace probkb {

namespace {

/// Epoch table names: TPi plus the six MLN partitions.
std::string MName(int p) { return StrFormat("m%d", p); }

/// Snapshot tables are immutable by contract; the grounder's plan
/// execution only reads its inputs, so sharing them back as mutable
/// TablePtr handles is safe. The cast is confined to this boundary.
TablePtr Thaw(const ConstTablePtr& table) {
  return std::const_pointer_cast<Table>(table);
}

}  // namespace

std::string ServeAnswer::ToString() const {
  std::string out = StrFormat(
      "epoch %lld: %zu answer(s), grounded %lld/%lld atoms, depth %d%s%s\n",
      static_cast<long long>(epoch), entries.size(),
      static_cast<long long>(grounded_atoms),
      static_cast<long long>(total_atoms), depth_reached,
      exact ? ", exact" : "", truncated ? ", truncated" : "");
  for (const Entry& e : entries) {
    out += StrFormat("  %.3f %s%s\n", e.probability, e.text.c_str(),
                     e.inferred ? " [inferred]" : "");
  }
  return out;
}

QueryServer::QueryServer(const KnowledgeBase* kb, FactId first_inferred_id,
                         ServeOptions options)
    : kb_(kb), first_inferred_id_(first_inferred_id), options_(options) {}

Result<int64_t> QueryServer::PublishEpoch(const RelationalKB& rkb) {
  Catalog catalog;
  PROBKB_RETURN_NOT_OK(catalog.Register("t_pi", rkb.t_pi));
  for (int p = 1; p <= kNumRuleStructures; ++p) {
    PROBKB_RETURN_NOT_OK(
        catalog.Register(MName(p), rkb.m[static_cast<size_t>(p - 1)]));
  }
  return store_.Publish(catalog.Snapshot());
}

Result<PinnedSnapshot> QueryServer::PinNewest() const {
  PinnedSnapshot pin = store_.Pin();
  if (!pin.ok()) {
    return Status::NotFound(
        "no epoch published yet; serve after the first PublishEpoch()");
  }
  return pin;
}

Result<std::shared_ptr<const QueryServer::EpochIndex>> QueryServer::IndexFor(
    const PinnedSnapshot& pin, bool* cache_hit) {
  std::lock_guard<std::mutex> lock(index_mu_);
  if (cache_hit != nullptr) *cache_hit = true;
  for (const auto& [epoch, index] : cache_) {
    if (epoch == pin.epoch) return index;
  }
  if (cache_hit != nullptr) *cache_hit = false;
  auto index = std::make_shared<EpochIndex>();
  PROBKB_ASSIGN_OR_RETURN(ConstTablePtr t_pi, pin.catalog->Get("t_pi"));
  index->t_pi = Thaw(t_pi);
  for (int p = 1; p <= kNumRuleStructures; ++p) {
    PROBKB_ASSIGN_OR_RETURN(ConstTablePtr m, pin.catalog->Get(MName(p)));
    index->m[static_cast<size_t>(p - 1)] = Thaw(m);
  }
  index->query =
      std::make_unique<KbQuery>(kb_, index->t_pi, first_inferred_id_);
  index->row_of = BuildFactRowIndex(*index->t_pi);
  cache_.emplace_back(pin.epoch, index);
  while (options_.max_cached_epochs > 0 &&
         cache_.size() > static_cast<size_t>(options_.max_cached_epochs)) {
    cache_.pop_front();
  }
  return std::shared_ptr<const EpochIndex>(index);
}

Result<ServeAnswer> QueryServer::Answer(const std::string& query_text) {
  TraceSpan serve_span(Tracer::Global(), "serve", "serve");
  QueryPattern pattern;
  {
    TraceSpan parse_span(Tracer::Global(), "parse", "serve",
                         static_cast<int64_t>(query_text.size()));
    PROBKB_ASSIGN_OR_RETURN(pattern, ParseQueryPattern(query_text));
  }
  TraceSpan pin_span(Tracer::Global(), "snapshot_pin", "serve");
  PROBKB_ASSIGN_OR_RETURN(PinnedSnapshot pin, PinNewest());
  pin_span.set_values(pin.epoch, 0, 0);
  pin_span.End();
  return AnswerAt(pattern, pin);
}

Result<ServeAnswer> QueryServer::AnswerAt(const QueryPattern& pattern,
                                          const PinnedSnapshot& pin) {
  if (!pin.ok()) {
    return Status::InvalidArgument("AnswerAt needs a pinned epoch");
  }
  Timer query_timer;
  TraceSpan query_span(Tracer::Global(), "serve_query", "serve", pin.epoch);
  bool cache_hit = false;
  std::shared_ptr<const EpochIndex> index;
  {
    TraceSpan index_span(Tracer::Global(), "epoch_index", "serve",
                         pin.epoch);
    PROBKB_ASSIGN_OR_RETURN(index, IndexFor(pin, &cache_hit));
    index_span.set_values(pin.epoch, cache_hit ? 1 : 0, 0);
  }
  const std::vector<int64_t> seeds = index->query->SeedRows(pattern);

  Timer ground_timer;
  TraceSpan ground_span(Tracer::Global(), "local_ground", "serve",
                        static_cast<int64_t>(seeds.size()));
  PROBKB_ASSIGN_OR_RETURN(
      LocalGrounding grounding,
      GroundLocalSubgraph(index->t_pi, index->m, index->row_of, seeds,
                          options_.grounding));
  ground_span.set_values(grounding.grounded_atoms, grounding.depth_reached,
                         grounding.truncated ? 1 : 0);
  ground_span.End();
  const double ground_seconds = ground_timer.Seconds();

  Timer infer_timer;
  TraceSpan infer_span(Tracer::Global(), "infer", "serve");
  PROBKB_ASSIGN_OR_RETURN(
      SubgraphMarginals marginals,
      ComputeSubgraphMarginals(*grounding.sub_t_pi, *grounding.t_phi,
                               options_.inference));
  infer_span.set_values(marginals.exact ? 1 : 0,
                        grounding.grounded_atoms, 0);
  infer_span.End();
  const double infer_seconds = infer_timer.Seconds();

  ServeAnswer answer;
  answer.epoch = pin.epoch;
  answer.grounded_atoms = grounding.grounded_atoms;
  answer.total_atoms = grounding.total_atoms;
  answer.depth_reached = grounding.depth_reached;
  answer.truncated = grounding.truncated;
  answer.exact = marginals.exact;
  answer.entries.reserve(seeds.size());
  for (int64_t r : seeds) {
    RowView row = index->t_pi->row(r);
    ServeAnswer::Entry entry;
    entry.id = row[tpi::kI].i64();
    entry.text = kb_->FactToString(FactFromRow(row));
    entry.inferred = first_inferred_id_ >= 0
                         ? entry.id >= first_inferred_id_
                         : row[tpi::kW].is_null();
    auto it = marginals.probability.find(entry.id);
    entry.probability = it == marginals.probability.end() ? 0.0 : it->second;
    answer.entries.push_back(std::move(entry));
  }
  std::sort(answer.entries.begin(), answer.entries.end(),
            [](const ServeAnswer::Entry& a, const ServeAnswer::Entry& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.id < b.id;
            });
  if (options_.top_k > 0 &&
      answer.entries.size() > static_cast<size_t>(options_.top_k)) {
    answer.entries.resize(static_cast<size_t>(options_.top_k));
  }

  // End the root span before recording so the exemplar's trace is fully
  // emitted by the time a report links to it.
  const uint64_t trace_id = query_span.trace_id();
  query_span.set_values(pin.epoch, grounding.grounded_atoms,
                        static_cast<int64_t>(answer.entries.size()));
  query_span.End();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.RecordLatency("serve_query", query_timer.Seconds(), trace_id);
    stats_.RecordLatency("serve_ground", ground_seconds, trace_id);
    stats_.RecordLatency("serve_infer", infer_seconds, trace_id);
    stats_.IncrementCounter("serve_queries");
    stats_.IncrementCounter("serve_grounded_atoms",
                            grounding.grounded_atoms);
    stats_.IncrementCounter("serve_answers",
                            static_cast<int64_t>(answer.entries.size()));
    if (grounding.truncated) stats_.IncrementCounter("serve_truncated");
  }
  return answer;
}

std::string QueryServer::StatsText() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_.ToText();
}

int64_t QueryServer::StatsCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_.FindCounter(name);
}

std::string QueryServer::PrometheusText() const {
  std::string out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_.ToPrometheusText();
  }
  out += "# TYPE probkb_serve_epoch gauge\n";
  out += StrFormat("probkb_serve_epoch %lld\n",
                   static_cast<long long>(current_epoch()));
  return out;
}

}  // namespace probkb
