#ifndef PROBKB_SERVE_QUERY_SERVER_H_
#define PROBKB_SERVE_QUERY_SERVER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "grounding/local_grounder.h"
#include "infer/subgraph.h"
#include "kb/kb_query.h"
#include "kb/relational_model.h"
#include "obs/stats_registry.h"
#include "relational/snapshot.h"
#include "util/result.h"

namespace probkb {

/// \brief Per-query knobs of the serving path.
struct ServeOptions {
  LocalGroundingOptions grounding;
  SubgraphInferenceOptions inference;
  /// Answers reported per query (0 = all matches).
  int top_k = 10;
  /// Published-epoch indexes kept cached; older ones are rebuilt on demand
  /// if a long-pinned reader comes back for them.
  int max_cached_epochs = 4;
};

/// \brief One answered query.
struct ServeAnswer {
  struct Entry {
    FactId id = -1;
    std::string text;
    /// Marginal P(fact) from inference over the local subgraph.
    double probability = 0.0;
    bool inferred = false;
  };
  int64_t epoch = -1;
  /// Descending probability, ties broken by ascending fact id.
  std::vector<Entry> entries;
  /// Locality report: atoms grounded for this query vs the epoch's full
  /// TPi size.
  int64_t grounded_atoms = 0;
  int64_t total_atoms = 0;
  int depth_reached = 0;
  bool truncated = false;
  /// True when the subgraph was small enough for exact enumeration.
  bool exact = false;

  std::string ToString() const;
};

/// \brief On-demand query serving over snapshot-versioned tables.
///
/// One writer (the background expansion loop) publishes epochs via
/// PublishEpoch(); any number of reader threads answer queries via
/// Answer()/AnswerAt(). A query pins an epoch, backward-chains from the
/// atoms matching the pattern to a bounded proof neighborhood
/// (GroundLocalSubgraph), and runs exact or seeded-Gibbs inference on just
/// that subgraph — so answers are deterministic per (epoch, query,
/// options) and concurrent readers at the same epoch get bit-identical
/// results regardless of what the writer publishes meanwhile.
class QueryServer {
 public:
  /// `kb` supplies the dictionaries; it must outlive the server and stay
  /// frozen (serving never adds entities or relations — expansion only
  /// derives new facts over the existing vocabulary).
  /// `first_inferred_id` is the RelationalKB's next_fact_id before any
  /// grounding: facts at or above it are flagged inferred.
  QueryServer(const KnowledgeBase* kb, FactId first_inferred_id,
              ServeOptions options = {});

  /// \brief Publishes `rkb`'s current tables as the next epoch: snapshots
  /// TPi and the six MLN partitions copy-on-write and swaps them in
  /// atomically. Writer-thread only, and must not race the writer's own
  /// table mutations (call between fixpoint iterations).
  Result<int64_t> PublishEpoch(const RelationalKB& rkb);

  /// \brief Pins the newest epoch (FailedPrecondition before the first
  /// publish). Readers hold the pin across queries for repeatable reads.
  Result<PinnedSnapshot> PinNewest() const;

  /// \brief Parses `query_text` and answers it at the newest epoch.
  Result<ServeAnswer> Answer(const std::string& query_text);

  /// \brief Answers `pattern` at the pinned epoch.
  Result<ServeAnswer> AnswerAt(const QueryPattern& pattern,
                               const PinnedSnapshot& pin);

  int64_t current_epoch() const { return store_.current_epoch(); }
  SnapshotStore* store_for_test() { return &store_; }

  /// \brief Rendered serve metrics (latency histograms + counters). The
  /// registry is guarded by the server's stats mutex, so this is safe
  /// while readers are in flight.
  std::string StatsText() const;
  int64_t StatsCounter(const std::string& name) const;

  /// \brief Prometheus-text-format snapshot of the serve metrics plus a
  /// `probkb_serve_epoch` gauge. This is what the metrics socket ships on
  /// every poll; same locking contract as StatsText().
  std::string PrometheusText() const;

 private:
  /// Frozen per-epoch read amplifiers, built once and shared by every
  /// query at that epoch: the name->row index (KbQuery) and the fact
  /// id->row map the local grounder seeds from.
  struct EpochIndex {
    TablePtr t_pi;
    std::array<TablePtr, kNumRuleStructures> m;
    std::unique_ptr<KbQuery> query;
    std::unordered_map<FactId, int64_t> row_of;
  };

  /// A non-null `cache_hit` reports whether the epoch's index was already
  /// cached (the serve trace tags its "epoch_index" span with it).
  Result<std::shared_ptr<const EpochIndex>> IndexFor(
      const PinnedSnapshot& pin, bool* cache_hit = nullptr);

  const KnowledgeBase* kb_;
  FactId first_inferred_id_;
  ServeOptions options_;
  SnapshotStore store_;

  std::mutex index_mu_;
  /// epoch -> index, newest at the back; bounded by max_cached_epochs.
  std::deque<std::pair<int64_t, std::shared_ptr<const EpochIndex>>> cache_;

  mutable std::mutex stats_mu_;
  StatsRegistry stats_;
};

}  // namespace probkb

#endif  // PROBKB_SERVE_QUERY_SERVER_H_
