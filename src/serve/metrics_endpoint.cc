#include "serve/metrics_endpoint.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "runtime/wire.h"
#include "util/logging.h"

namespace probkb {

namespace {

/// Accept-poll granularity: the ceiling on Stop() latency.
constexpr int kAcceptPollMs = 200;

}  // namespace

MetricsEndpoint::MetricsEndpoint(const QueryServer* server,
                                 std::string socket_path)
    : server_(server), socket_path_(std::move(socket_path)) {}

MetricsEndpoint::~MetricsEndpoint() { Stop(); }

Status MetricsEndpoint::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("metrics socket path too long: " +
                                   socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("metrics socket: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  // A stale file from a crashed prior run would make bind fail; remove it.
  ::unlink(socket_path_.c_str());
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("metrics socket: bind(" + socket_path_ +
                           ") failed: " + err);
  }
  if (listen(listen_fd_, 4) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    return Status::IOError("metrics socket: listen failed: " + err);
  }
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PROBKB_SLOG(Obs, Info) << "metrics endpoint listening on "
                         << socket_path_;
  return Status::OK();
}

void MetricsEndpoint::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
  running_.store(false, std::memory_order_release);
}

void MetricsEndpoint::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop flag
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    ServeConnection(fd);
    ::close(fd);
  }
}

void MetricsEndpoint::ServeConnection(int fd) {
  while (!stop_.load(std::memory_order_acquire)) {
    // A short read deadline keeps an idle client from pinning the accept
    // loop past Stop(); the client just reconnects on its next poll.
    Result<wire::Frame> frame =
        wire::ReadFrame(fd, kAcceptPollMs / 1000.0);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kDeadlineExceeded) continue;
      return;  // EOF / reset / garbage: drop the connection
    }
    if (frame->type != wire::FrameType::kMetricsRequest) {
      PROBKB_SLOG(Obs, Warning)
          << "metrics endpoint: unexpected frame "
          << wire::FrameTypeName(frame->type) << ", dropping connection";
      return;
    }
    const std::string snapshot = server_->PrometheusText();
    // Counted before the reply leaves: a client that has read the reply
    // must observe the poll as served (tests poll-then-check).
    polls_served_.fetch_add(1, std::memory_order_relaxed);
    if (!wire::WriteFrame(fd, wire::FrameType::kMetricsReply, -1, snapshot)
             .ok()) {
      return;
    }
  }
}

}  // namespace probkb
