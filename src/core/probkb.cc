#include "core/probkb.h"

#include "infer/writeback.h"
#include "quality/rule_cleaning.h"

namespace probkb {

Result<ExpansionResult> ExpandKnowledgeBase(const KnowledgeBase& kb,
                                            const ExpansionOptions& options) {
  if (options.rule_cleaning_theta < 0) {
    return Status::InvalidArgument("rule_cleaning_theta must be >= 0");
  }
  if (options.use_mpp && options.mpp_segments < 1) {
    return Status::InvalidArgument("mpp_segments must be >= 1");
  }

  ExpansionResult result;

  // Quality control: rule cleaning, then the up-front Query 3 pass.
  KnowledgeBase working = kb;
  if (options.rule_cleaning_theta < 1.0) {
    *working.mutable_rules() =
        TopThetaRules(working.rules(), options.rule_cleaning_theta);
  }
  RelationalKB rkb = BuildRelationalModel(working);
  result.first_inferred_id = rkb.next_fact_id;
  if (options.constraints_upfront) {
    Grounder pre(&rkb, options.grounding);
    PROBKB_ASSIGN_OR_RETURN(result.constraints_deleted_upfront,
                            pre.ApplyConstraints());
  }

  // Grounding (Algorithm 1) on the chosen engine.
  if (options.use_mpp) {
    MppGrounder grounder(rkb, options.mpp_segments, options.mpp_mode,
                         options.grounding);
    PROBKB_RETURN_NOT_OK(grounder.GroundAtoms());
    PROBKB_ASSIGN_OR_RETURN(result.t_phi, grounder.GroundFactors());
    result.t_pi = grounder.GatherTPi();
    result.grounding_stats = grounder.stats();
  } else {
    Grounder grounder(&rkb, options.grounding);
    PROBKB_RETURN_NOT_OK(grounder.GroundAtoms());
    PROBKB_ASSIGN_OR_RETURN(result.t_phi, grounder.GroundFactors());
    result.t_pi = rkb.t_pi;
    result.grounding_stats = grounder.stats();
  }

  // Factor graph + marginal inference + write-back.
  PROBKB_ASSIGN_OR_RETURN(FactorGraph graph,
                          FactorGraph::FromTables(*result.t_pi,
                                                  *result.t_phi));
  result.graph = std::make_shared<FactorGraph>(std::move(graph));
  if (options.run_inference) {
    PROBKB_ASSIGN_OR_RETURN(result.inference,
                            GibbsMarginals(*result.graph, options.gibbs));
    PROBKB_ASSIGN_OR_RETURN(
        int64_t written,
        WriteMarginalsToTPi(result.t_pi.get(), *result.graph,
                            result.inference.marginals));
    (void)written;
  }
  return result;
}

KbQuery MakeQuery(const KnowledgeBase& kb, const ExpansionResult& result) {
  return KbQuery(&kb, result.t_pi, result.first_inferred_id);
}

}  // namespace probkb
