#include "core/probkb.h"

#include "infer/writeback.h"
#include "quality/rule_cleaning.h"
#include "util/strings.h"

namespace probkb {

std::string StageFailureCounters::ToString() const {
  return StrFormat(
      "stage failures: grounding %d, factor grounding %d, inference %d",
      grounding, factor_grounding, inference);
}

namespace {

/// Converts a budget failure into a partial result; any other error
/// propagates. `counter` is the stage's failure counter.
bool MakePartial(const Status& st, int* counter, ExpansionResult* result) {
  if (!IsBudgetFailure(st.code())) return false;
  result->partial = true;
  result->stop_reason = st;
  ++*counter;
  return true;
}

}  // namespace

Result<ExpansionResult> ExpandKnowledgeBase(const KnowledgeBase& kb,
                                            const ExpansionOptions& options) {
  if (options.rule_cleaning_theta < 0) {
    return Status::InvalidArgument("rule_cleaning_theta must be >= 0");
  }
  if (options.use_mpp && options.mpp_segments < 1) {
    return Status::InvalidArgument("mpp_segments must be >= 1");
  }

  ExpansionResult result;
  FaultInjector injector(options.fault_injection);
  FaultInjector* inj =
      options.fault_injection.enabled ? &injector : nullptr;

  // Quality control: rule cleaning, then the up-front Query 3 pass.
  KnowledgeBase working = kb;
  if (options.rule_cleaning_theta < 1.0) {
    *working.mutable_rules() =
        TopThetaRules(working.rules(), options.rule_cleaning_theta);
  }
  RelationalKB rkb = BuildRelationalModel(working);
  result.first_inferred_id = rkb.next_fact_id;
  if (options.constraints_upfront) {
    Grounder pre(&rkb, options.grounding);
    PROBKB_ASSIGN_OR_RETURN(result.constraints_deleted_upfront,
                            pre.ApplyConstraints());
  }

  // Grounding (Algorithm 1) on the chosen engine. A budget failure here
  // degrades to a partial result carrying the facts expanded so far; any
  // other error still propagates.
  const std::string& ckpt_dir = options.grounding.checkpoint_dir;
  const bool resume = options.resume_from_checkpoint && !ckpt_dir.empty() &&
                      GroundingCheckpointExists(ckpt_dir);
  if (options.use_mpp) {
    MppGrounder grounder(rkb, options.mpp_segments, options.mpp_mode,
                         options.grounding, CostParams{}, inj,
                         options.retry);
    if (resume) PROBKB_RETURN_NOT_OK(grounder.ResumeFrom(ckpt_dir));
    Status st = grounder.GroundAtoms();
    result.grounding_stats = grounder.stats();
    if (!st.ok()) {
      if (!MakePartial(st, &result.failures.grounding, &result)) return st;
    } else {
      Result<TablePtr> factors = grounder.GroundFactors();
      if (factors.ok()) {
        result.t_phi = factors.MoveValueOrDie();
      } else if (!MakePartial(factors.status(),
                              &result.failures.factor_grounding, &result)) {
        return factors.status();
      }
      result.grounding_stats = grounder.stats();
    }
    result.t_pi = grounder.GatherTPi();
    result.fault_stats = injector.stats();
  } else {
    Grounder grounder(&rkb, options.grounding);
    grounder.set_fault_injector(inj);
    if (resume) PROBKB_RETURN_NOT_OK(grounder.ResumeFrom(ckpt_dir));
    Status st = grounder.GroundAtoms();
    result.grounding_stats = grounder.stats();
    if (!st.ok()) {
      if (!MakePartial(st, &result.failures.grounding, &result)) return st;
    } else {
      Result<TablePtr> factors = grounder.GroundFactors();
      if (factors.ok()) {
        result.t_phi = factors.MoveValueOrDie();
      } else if (!MakePartial(factors.status(),
                              &result.failures.factor_grounding, &result)) {
        return factors.status();
      }
      result.grounding_stats = grounder.stats();
    }
    result.t_pi = rkb.t_pi;
    result.fault_stats = injector.stats();
  }
  if (result.partial) {
    // Partially expanded KB: inferred facts keep NULL weights; no factor
    // graph (t_phi may be missing or incomplete).
    if (result.t_phi == nullptr) result.t_phi = Table::Make(TPhiSchema());
    return result;
  }

  // Factor graph + marginal inference + write-back.
  PROBKB_ASSIGN_OR_RETURN(FactorGraph graph,
                          FactorGraph::FromTables(*result.t_pi,
                                                  *result.t_phi));
  result.graph = std::make_shared<FactorGraph>(std::move(graph));
  if (options.run_inference) {
    // With max_sweeps_per_call set, sampling advances in resumable slices
    // (the checkpoint carries exact chain state between calls).
    GibbsCheckpoint sampler_state;
    Result<GibbsResult> inference =
        GibbsMarginals(*result.graph, options.gibbs, &sampler_state);
    while (inference.ok() && !inference->complete) {
      inference = GibbsMarginals(*result.graph, options.gibbs,
                                 &sampler_state);
    }
    if (!inference.ok()) {
      if (!MakePartial(inference.status(), &result.failures.inference,
                       &result)) {
        return inference.status();
      }
      return result;
    }
    result.inference = inference.MoveValueOrDie();
    PROBKB_ASSIGN_OR_RETURN(
        int64_t written,
        WriteMarginalsToTPi(result.t_pi.get(), *result.graph,
                            result.inference.marginals));
    (void)written;
  }
  return result;
}

KbQuery MakeQuery(const KnowledgeBase& kb, const ExpansionResult& result) {
  return KbQuery(&kb, result.t_pi, result.first_inferred_id);
}

}  // namespace probkb
