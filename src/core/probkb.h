#ifndef PROBKB_CORE_PROBKB_H_
#define PROBKB_CORE_PROBKB_H_

#include <memory>
#include <string>

#include "factor/factor_graph.h"
#include "fault/fault_injector.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "infer/gibbs.h"
#include "kb/kb_query.h"
#include "kb/knowledge_base.h"
#include "util/result.h"

namespace probkb {

/// \brief One-call configuration of the full ProbKB pipeline (Figure 1):
/// quality control -> batched grounding -> factor graph -> marginal
/// inference -> write-back.
struct ExpansionOptions {
  /// Rule cleaning: keep the top fraction of rules by learner score
  /// (Section 5.3); 1.0 keeps everything.
  double rule_cleaning_theta = 1.0;
  /// Apply Query 3 to the extracted facts before grounding (Section 6.1).
  bool constraints_upfront = true;
  GroundingOptions grounding;
  /// Run Gibbs marginal inference and write probabilities back into the
  /// facts table. When false, inferred facts keep NULL weights.
  bool run_inference = true;
  GibbsOptions gibbs;
  /// Execute grounding on the shared-nothing simulator instead of the
  /// single-node engine.
  bool use_mpp = false;
  int mpp_segments = 32;
  MppMode mpp_mode = MppMode::kViews;
  /// Deterministic fault injection threaded through the engines (chaos
  /// testing; see DESIGN.md "Fault model and recovery"). Off by default.
  FaultInjectionOptions fault_injection;
  /// Retry/backoff budget for recovering injected segment failures on the
  /// MPP simulator.
  RetryPolicy retry;
  /// Resume grounding from grounding.checkpoint_dir when that directory
  /// holds a complete checkpoint from an earlier (interrupted) run.
  bool resume_from_checkpoint = false;
};

/// \brief How many statements each pipeline stage abandoned to a budget
/// failure (deadline, simulated memory, cancellation). All zero unless
/// ExpansionResult::partial.
struct StageFailureCounters {
  int grounding = 0;
  int factor_grounding = 0;
  int inference = 0;
  int Total() const { return grounding + factor_grounding + inference; }
  std::string ToString() const;
};

/// \brief Everything the pipeline produces.
struct ExpansionResult {
  /// The expanded facts table (I, R, x, C1, y, C2, w); inferred facts
  /// carry their marginal probability in w after inference.
  TablePtr t_pi;
  /// The ground factor table (I1, I2, I3, w).
  TablePtr t_phi;
  /// The factor graph over t_pi/t_phi (lineage queries, re-inference).
  std::shared_ptr<FactorGraph> graph;
  /// Fact ids >= this are inferred; below are extracted.
  FactId first_inferred_id = 0;
  int64_t constraints_deleted_upfront = 0;
  GroundingStats grounding_stats;
  /// Inference record (marginals indexed by graph variable); default-
  /// constructed when run_inference was false.
  GibbsResult inference;
  /// Graceful degradation: true when a budget failure stopped the
  /// pipeline early. t_pi then holds every fact expanded before the stop,
  /// `failures` counts what each stage abandoned, and `stop_reason` is
  /// the status that ended the run. Later stages (factor grounding,
  /// inference) are skipped once a stage goes partial.
  bool partial = false;
  StageFailureCounters failures;
  Status stop_reason;
  /// Injected-fault and recovery accounting (all zero unless
  /// options.fault_injection.enabled).
  FaultStats fault_stats;
};

/// \brief Runs the whole ProbKB pipeline over `kb` and returns the
/// expanded knowledge base artifacts. `kb` is not modified.
///
///   auto kb = ParseMlnFile("program.mln");
///   auto result = ExpandKnowledgeBase(*kb);
///   KbQuery query = MakeQuery(*kb, *result);
///   for (auto& f : query.Find("live_in", "Ann", std::nullopt)) ...
Result<ExpansionResult> ExpandKnowledgeBase(
    const KnowledgeBase& kb, const ExpansionOptions& options = {});

/// \brief Convenience: a query view over an expansion's facts.
KbQuery MakeQuery(const KnowledgeBase& kb, const ExpansionResult& result);

}  // namespace probkb

#endif  // PROBKB_CORE_PROBKB_H_
