#ifndef PROBKB_RELATIONAL_SNAPSHOT_H_
#define PROBKB_RELATIONAL_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "relational/catalog.h"
#include "util/result.h"

namespace probkb {

/// \brief One pinned epoch: a frozen catalog plus the epoch number it was
/// published under. Holding the handle keeps the epoch's tables alive (and
/// bit-stable) for as long as the reader needs them, however many epochs
/// the writer publishes in the meantime.
struct PinnedSnapshot {
  int64_t epoch = -1;
  std::shared_ptr<const CatalogSnapshot> catalog;

  bool ok() const { return catalog != nullptr; }
};

/// \brief Epoch-versioned publication point between one writer and many
/// concurrent readers.
///
/// The background expansion loop (the writer) publishes a frozen
/// CatalogSnapshot after each fixpoint iteration; query threads Pin() the
/// newest epoch and evaluate against it without any further
/// synchronization — the snapshot's tables are immutable by construction
/// (Table::Snapshot copy-on-write handles). Publication is atomic: a
/// reader observes either epoch N in full or epoch N+1 in full, never a
/// mix, and a publish that fails (see the test observer) leaves the
/// current epoch untouched.
///
/// Memory: an old epoch's column data is freed as soon as the last pin on
/// it drops *and* the writer has detached (rewritten) the columns; epochs
/// nobody pinned cost only the catalog map itself, because unmodified
/// columns are shared across epochs rather than copied.
class SnapshotStore {
 public:
  /// \brief Atomically publishes `catalog` as the next epoch and returns
  /// its epoch number (0, 1, 2, ...). Single writer: callers serialize
  /// their own Publish() calls (the store locks, but epoch ordering across
  /// racing writers would be meaningless).
  Result<int64_t> Publish(std::shared_ptr<const CatalogSnapshot> catalog);

  /// \brief Pins the newest published epoch. Before the first publish the
  /// returned handle has epoch -1 and a null catalog (!ok()).
  PinnedSnapshot Pin() const;

  /// \brief Newest published epoch, -1 before the first publish.
  int64_t current_epoch() const;

  /// \brief Test-only fault hook, run while the publish lock is held but
  /// before the new epoch becomes visible. Returning non-OK aborts the
  /// publish: readers must keep seeing the previous epoch, bit-identically
  /// — the snapshot-isolation chaos tests inject failures here.
  void SetPublishObserverForTest(
      std::function<Status(int64_t next_epoch)> observer) {
    std::lock_guard<std::mutex> lock(mu_);
    publish_observer_ = std::move(observer);
  }

 private:
  mutable std::mutex mu_;
  int64_t epoch_ = -1;
  std::shared_ptr<const CatalogSnapshot> current_;
  std::function<Status(int64_t)> publish_observer_;
};

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_SNAPSHOT_H_
