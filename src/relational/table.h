#ifndef PROBKB_RELATIONAL_TABLE_H_
#define PROBKB_RELATIONAL_TABLE_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/logging.h"
#include "util/result.h"

namespace probkb {

class Table;
using TablePtr = std::shared_ptr<Table>;
/// Immutable table handle, as produced by Table::Snapshot().
using ConstTablePtr = std::shared_ptr<const Table>;

/// \brief Non-owning view of one row.
///
/// Two backings share this facade: a row of a (columnar) Table, or a raw
/// `Value` buffer materialized by an operator (residual-predicate input,
/// aggregate output). `operator[]` therefore returns a Value by value; the
/// cell itself no longer exists contiguously in memory for table-backed
/// views.
class RowView {
 public:
  RowView(const Value* data, int width) : data_(data), width_(width) {}
  inline RowView(const Table* table, int64_t row);

  int width() const { return width_; }
  inline Value operator[](int col) const;

  /// Table backing this view, or nullptr for buffer-backed views.
  const Table* backing_table() const { return table_; }
  int64_t row_index() const { return row_; }

  bool Equals(const RowView& other) const {
    if (width_ != other.width_) return false;
    for (int i = 0; i < width_; ++i) {
      if ((*this)[i] != other[i]) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  const Table* table_ = nullptr;
  int64_t row_ = 0;
  const Value* data_ = nullptr;
  int width_ = 0;
};

/// \brief Columnar in-memory relation: a Schema plus one typed vector
/// (`int64_t` or `double`) and a null bitmap per column.
///
/// Every column is either a dictionary-encoded int64 id or a float64
/// weight (see ColumnType), so storing the 16-byte tagged Value scalar per
/// cell wasted half the bytes and broke the contiguity the join hot loops
/// want. Columns store 8 bytes per cell plus one bit of null bitmap; NULL
/// cells hold a zero sentinel in the typed vector and set their bit.
/// RowView/AppendRow remain as a row-oriented compatibility facade.
///
/// Rows are appended, scanned by index, and deleted in bulk; this matches
/// how the grounding algorithm uses its tables (bulk inserts from joins,
/// bulk deletes from constraint application).
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {
    cols_.reserve(static_cast<size_t>(schema_.num_fields()));
    for (int c = 0; c < schema_.num_fields(); ++c) {
      auto col = std::make_shared<Column>();
      col->type = schema_.field(c).type;
      cols_.push_back(std::move(col));
    }
  }

  static TablePtr Make(Schema schema) {
    return std::make_shared<Table>(std::move(schema));
  }

  const Schema& schema() const { return schema_; }
  int width() const { return schema_.num_fields(); }
  int64_t NumRows() const { return width() == 0 ? 0 : num_rows_; }

  RowView row(int64_t i) const {
    PROBKB_DCHECK(i >= 0 && i < NumRows());
    return RowView(this, i);
  }

  /// \brief Materializes one cell. NULL bits win over the sentinel stored
  /// in the typed vector.
  Value ValueAt(int64_t row, int col) const {
    PROBKB_DCHECK(row >= 0 && row < NumRows());
    PROBKB_DCHECK(col >= 0 && col < width());
    const Column& c = *cols_[static_cast<size_t>(col)];
    if (c.null_count > 0 && IsNullBit(c, row)) return Value::Null();
    return c.type == ColumnType::kInt64
               ? Value::Int64(c.i64[static_cast<size_t>(row)])
               : Value::Float64(c.f64[static_cast<size_t>(row)]);
  }

  /// \brief Appends one row; `row.size()` must equal the schema width.
  void AppendRow(std::span<const Value> row);
  void AppendRow(std::initializer_list<Value> row) {
    AppendRow(std::span<const Value>(row.begin(), row.size()));
  }
  void AppendRow(const RowView& row);

  /// \brief Appends all rows of `other`; schemas must have equal width.
  void AppendTable(const Table& other) {
    AppendRows(other, 0, other.NumRows());
  }

  /// \brief Appends rows [begin, end) of `src` as contiguous per-column
  /// copies (no per-cell Value materialization). Column types must match.
  void AppendRows(const Table& src, int64_t begin, int64_t end);

  /// \brief Appends every row of `src`, keeping only columns `src_cols`
  /// (in order). The columnar fast path behind all-column projections.
  void AppendProjectedRows(const Table& src, std::span<const int> src_cols);

  /// \brief Row-range variant of AppendProjectedRows: appends rows
  /// [begin, end) of `src`, keeping only columns `src_cols`. The grace-hash
  /// merge uses it to strip the trailing row-id column from partition
  /// output runs without materializing cells.
  void AppendProjectedRows(const Table& src, std::span<const int> src_cols,
                           int64_t begin, int64_t end);

  /// \brief Appends the rows of `src` at indices `rows` (in order) as
  /// per-column gathers. Schemas must have equal width and column types.
  /// The spill partitioner's scatter path: one gather per partition beats
  /// a row-wise AppendRow loop by the usual columnar margin.
  void AppendGatheredRows(const Table& src, std::span<const int64_t> rows);

  /// \brief Like AppendGatheredRows, but this table carries one extra
  /// trailing int64 column (width() == src.width() + 1) that receives each
  /// appended row's `rows[i]` value. Spilled probe-side partitions use it
  /// to remember original row indices, so partition outputs can be merged
  /// back into the exact serial probe order (see DESIGN.md "Out-of-core").
  void AppendGatheredRowsWithIds(const Table& src,
                                 std::span<const int64_t> rows);

  /// \brief One decoded column for AppendColumnarRows: `words` points at
  /// 8-byte cells (int64 or float64 to match the column type; NULL cells
  /// hold the zero sentinel), `null_bitmap` at the packed row bitmap, or
  /// nullptr when the column has no NULLs.
  struct ColumnWords {
    const void* words = nullptr;
    const uint64_t* null_bitmap = nullptr;
  };

  /// \brief Appends `rows` rows from raw columnar words, one ColumnWords
  /// per schema column. The page-decode fast path of the wire/spill codec:
  /// straight vector inserts instead of per-cell Value materialization,
  /// byte-identical to the AppendRow route (the encoder dumped these words
  /// straight from the typed vectors).
  void AppendColumnarRows(int64_t rows, std::span<const ColumnWords> cols);

  /// \brief Reserves space for `n` additional rows.
  void ReserveRows(int64_t n);

  void Clear();

  /// \brief Removes rows for which `keep[i]` is false. `keep.size()` must be
  /// NumRows(). Returns the number of rows removed.
  int64_t FilterInPlace(const std::vector<bool>& keep);

  /// \brief Value-semantics copy. O(width): the copy shares this table's
  /// column storage and either side detaches (copies) a column the first
  /// time it mutates it, so the two tables stay independent.
  TablePtr Clone() const;

  /// \brief Cheap copy-on-write snapshot handle: a frozen Table sharing
  /// this table's column storage (O(width) shared_ptr copies, no row data
  /// moved). The snapshot is immutable by type; subsequent mutations of
  /// this table detach only the touched columns, so readers holding the
  /// handle keep seeing exactly the rows that existed at snapshot time.
  /// Must be called from the thread that mutates this table (the writer):
  /// the handle itself may then be handed to any number of reader threads.
  std::shared_ptr<const Table> Snapshot() const;

  /// \brief Exact memory footprint of the column data in bytes: 8 bytes per
  /// cell plus the null-bitmap words (used by the MPP cost model).
  int64_t ByteSize() const {
    int64_t bytes = 0;
    for (const ColumnPtr& p : cols_) {
      const Column& c = *p;
      bytes += static_cast<int64_t>(
          (c.type == ColumnType::kInt64 ? c.i64.size() : c.f64.size()) *
              sizeof(int64_t) +
          c.null_words.size() * sizeof(uint64_t));
    }
    return bytes;
  }

  // Columnar accessors for batch loops. The raw pointers alias the typed
  // vectors: valid until the next append/filter. Null cells hold a zero
  // sentinel; consult IsNull()/ColumnHasNulls() where NULLs can occur.
  const int64_t* Int64Data(int col) const {
    PROBKB_DCHECK(ColType(col) == ColumnType::kInt64);
    return cols_[static_cast<size_t>(col)]->i64.data();
  }
  const double* Float64Data(int col) const {
    PROBKB_DCHECK(ColType(col) == ColumnType::kFloat64);
    return cols_[static_cast<size_t>(col)]->f64.data();
  }
  bool ColumnHasNulls(int col) const {
    return cols_[static_cast<size_t>(col)]->null_count > 0;
  }
  bool IsNull(int64_t row, int col) const {
    const Column& c = *cols_[static_cast<size_t>(col)];
    return c.null_count > 0 && IsNullBit(c, row);
  }

  /// \brief Overwrites a float64 cell in place, clearing its null bit.
  /// Inference writes marginals back into TPi's weight column with this.
  void SetFloat64(int64_t row, int col, double v);

  /// \brief Batch row-key hashing: fills `out[0 .. end-begin)` with
  /// HashRowKey(row(begin + i), key_cols), computed as one tight loop per
  /// key column over the contiguous column data.
  void HashRows(std::span<const int> key_cols, int64_t begin, int64_t end,
                size_t* out) const;

  /// \brief Pretty-prints up to `max_rows` rows (debugging / examples).
  std::string ToString(int64_t max_rows = 20) const;

  /// \brief Sorted copy of the rows (lexicographic), for order-insensitive
  /// comparisons in tests.
  std::vector<std::vector<Value>> SortedRows() const;

 private:
  struct Column {
    ColumnType type = ColumnType::kInt64;
    std::vector<int64_t> i64;         // data when type == kInt64
    std::vector<double> f64;          // data when type == kFloat64
    std::vector<uint64_t> null_words; // bit r set => row r is NULL
    int64_t null_count = 0;
  };
  /// Columns are held by shared_ptr so Snapshot()/Clone() can share them
  /// copy-on-write: a column referenced by more than one table is copied
  /// by the mutating side before the first write (see Mut()).
  using ColumnPtr = std::shared_ptr<Column>;

  ColumnType ColType(int col) const {
    PROBKB_DCHECK(col >= 0 && col < width());
    return cols_[static_cast<size_t>(col)]->type;
  }

  /// \brief Mutable access to column `col`, detaching it first when it is
  /// shared with a snapshot or clone. use_count() == 1 proves exclusive
  /// ownership (snapshot handles are created and released under shared_ptr's
  /// atomic control block), so the unshared fast path never copies.
  Column& Mut(int col) {
    ColumnPtr& p = cols_[static_cast<size_t>(col)];
    if (p.use_count() > 1) p = std::make_shared<Column>(*p);
    return *p;
  }

  static bool IsNullBit(const Column& c, int64_t row) {
    return (c.null_words[static_cast<size_t>(row >> 6)] >>
            (static_cast<uint64_t>(row) & 63)) &
           1;
  }
  static void SetNullBit(Column* c, int64_t row) {
    c->null_words[static_cast<size_t>(row >> 6)] |=
        uint64_t{1} << (static_cast<uint64_t>(row) & 63);
    ++c->null_count;
  }
  /// Grows every column's bitmap to cover rows [0, num_rows_ + n).
  void ExtendNullWords(int64_t n);

  Schema schema_;
  int64_t num_rows_ = 0;
  std::vector<ColumnPtr> cols_;
};

inline RowView::RowView(const Table* table, int64_t row)
    : table_(table), row_(row), width_(table->width()) {}

inline Value RowView::operator[](int col) const {
  PROBKB_DCHECK(col >= 0 && col < width_);
  return table_ != nullptr ? table_->ValueAt(row_, col) : data_[col];
}

/// Seed and combine step of the row-key hash; Table::HashRows and
/// HashRowKey share them so batched and scalar hashing agree bit for bit.
inline constexpr size_t kRowHashSeed = 0x243F6A8885A308D3ULL;  // pi digits
inline size_t CombineRowHash(size_t h, size_t value_hash) {
  return h ^ (value_hash + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

/// \brief Hashes the key columns of a row (for joins / distinct / hash
/// distribution).
size_t HashRowKey(const RowView& row, std::span<const int> key_cols);

/// \brief Compares the key columns of two rows for equality.
bool RowKeyEquals(const RowView& a, const RowView& b,
                  std::span<const int> a_cols, std::span<const int> b_cols);

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_TABLE_H_
