#ifndef PROBKB_RELATIONAL_TABLE_H_
#define PROBKB_RELATIONAL_TABLE_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/logging.h"
#include "util/result.h"

namespace probkb {

class Table;
using TablePtr = std::shared_ptr<Table>;

/// \brief Non-owning view of one row of a Table.
class RowView {
 public:
  RowView(const Value* data, int width) : data_(data), width_(width) {}

  int width() const { return width_; }
  const Value& operator[](int col) const {
    PROBKB_DCHECK(col >= 0 && col < width_);
    return data_[col];
  }
  std::span<const Value> values() const {
    return {data_, static_cast<size_t>(width_)};
  }

  bool Equals(const RowView& other) const {
    if (width_ != other.width_) return false;
    for (int i = 0; i < width_; ++i) {
      if (data_[i] != other.data_[i]) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  const Value* data_;
  int width_;
};

/// \brief Row-major in-memory relation: a Schema plus a flat value buffer.
///
/// Rows are appended, scanned by index, and deleted in bulk; this matches
/// how the grounding algorithm uses its tables (bulk inserts from joins,
/// bulk deletes from constraint application).
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  static TablePtr Make(Schema schema) {
    return std::make_shared<Table>(std::move(schema));
  }

  const Schema& schema() const { return schema_; }
  int width() const { return schema_.num_fields(); }
  int64_t NumRows() const {
    return width() == 0 ? 0
                        : static_cast<int64_t>(values_.size()) / width();
  }

  RowView row(int64_t i) const {
    PROBKB_DCHECK(i >= 0 && i < NumRows());
    return RowView(values_.data() + i * width(), width());
  }

  /// \brief Appends one row; `row.size()` must equal the schema width.
  void AppendRow(std::span<const Value> row) {
    PROBKB_DCHECK(static_cast<int>(row.size()) == width());
    values_.insert(values_.end(), row.begin(), row.end());
  }
  void AppendRow(std::initializer_list<Value> row) {
    AppendRow(std::span<const Value>(row.begin(), row.size()));
  }
  void AppendRow(const RowView& row) { AppendRow(row.values()); }

  /// \brief Appends all rows of `other`; schemas must have equal width.
  void AppendTable(const Table& other);

  /// \brief Reserves space for `n` additional rows.
  void ReserveRows(int64_t n) {
    values_.reserve(values_.size() + static_cast<size_t>(n * width()));
  }

  void Clear() { values_.clear(); }

  /// \brief Removes rows for which `keep[i]` is false. `keep.size()` must be
  /// NumRows(). Returns the number of rows removed.
  int64_t FilterInPlace(const std::vector<bool>& keep);

  /// \brief Deep copy.
  TablePtr Clone() const;

  /// \brief Rough memory footprint in bytes (used by the MPP cost model).
  int64_t ByteSize() const {
    return static_cast<int64_t>(values_.size() * sizeof(Value));
  }

  /// \brief Pretty-prints up to `max_rows` rows (debugging / examples).
  std::string ToString(int64_t max_rows = 20) const;

  /// \brief Sorted copy of the rows (lexicographic), for order-insensitive
  /// comparisons in tests.
  std::vector<std::vector<Value>> SortedRows() const;

 private:
  Schema schema_;
  std::vector<Value> values_;
};

/// \brief Hashes the key columns of a row (for joins / distinct / hash
/// distribution).
size_t HashRowKey(const RowView& row, std::span<const int> key_cols);

/// \brief Compares the key columns of two rows for equality.
bool RowKeyEquals(const RowView& a, const RowView& b,
                  std::span<const int> a_cols, std::span<const int> b_cols);

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_TABLE_H_
