#include "relational/value.h"

#include <cstdio>

namespace probkb {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kFloat64:
      return "FLOAT64";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (tag_) {
    case Tag::kNull:
      return "NULL";
    case Tag::kInt64:
      return std::to_string(i64_);
    case Tag::kFloat64: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", f64_);
      return buf;
    }
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace probkb
