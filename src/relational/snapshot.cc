#include "relational/snapshot.h"

namespace probkb {

Result<int64_t> SnapshotStore::Publish(
    std::shared_ptr<const CatalogSnapshot> catalog) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("cannot publish a null snapshot");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t next = epoch_ + 1;
  if (publish_observer_ != nullptr) {
    if (Status st = publish_observer_(next); !st.ok()) return st;
  }
  current_ = std::move(catalog);
  epoch_ = next;
  return next;
}

PinnedSnapshot SnapshotStore::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  PinnedSnapshot pinned;
  pinned.epoch = epoch_;
  pinned.catalog = current_;
  return pinned;
}

int64_t SnapshotStore::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

}  // namespace probkb
