#include "relational/spill.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "relational/table_io.h"
#include "util/logging.h"

namespace probkb {

namespace {

constexpr uint32_t kPageMagic = 0x53504C50;  // "SPLP"
// A page is one buffered partition flush (~spill_page_bytes); anything
// near this cap is a torn or foreign file, not a real page.
constexpr uint64_t kMaxPageBytes = uint64_t{1} << 31;

/// On-disk page header; the payload that follows is the wire encoding
/// (EncodeTableColumnar) of one partition slice.
struct PageHeader {
  uint32_t magic = kPageMagic;
  uint32_t reserved = 0;
  uint64_t payload_len = 0;
  uint64_t checksum = 0;
  int64_t rows = 0;
};

bool HasSuffix(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// fsync of the containing directory so a committed rename survives a
/// crash; best-effort (some filesystems reject directory fsync).
void SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

SpillContext::SpillContext(std::string dir, MemoryBudget* budget,
                           int64_t page_bytes)
    : dir_(std::move(dir)), budget_(budget), page_bytes_(page_bytes) {
  PROBKB_CHECK(page_bytes_ > 0);
}

SpillContext::~SpillContext() { RemoveOwnedFiles(); }

Status SpillContext::Prepare() {
  if (prepared_.exchange(true, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create spill directory '" + dir_ +
                           "': " + ec.message());
  }
  auto swept = SweepSpillDirectory(dir_);
  if (!swept.ok()) return swept.status();
  if (*swept > 0) {
    PROBKB_SLOG(Spill, Warning)
        << "swept " << *swept << " orphaned spill file(s) from '" << dir_
        << "' (predecessor crashed mid-spill)";
  }
  return Status::OK();
}

std::string SpillContext::NextFilePath(const std::string& label) {
  int64_t seq = file_seq_.fetch_add(1, std::memory_order_relaxed);
  return dir_ + "/" + label + "." + std::to_string(seq) + ".spill";
}

void SpillContext::TrackFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  owned_files_.push_back(path);
}

void SpillContext::RemoveOwnedFiles() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& path : owned_files_) {
    std::remove(path.c_str());
  }
  owned_files_.clear();
}

bool SpillContext::TakeCorruptReadToken() {
  int64_t n = corrupt_reads_.load(std::memory_order_relaxed);
  while (n > 0) {
    if (corrupt_reads_.compare_exchange_weak(n, n - 1,
                                             std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

Result<int> SweepSpillDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;  // no directory yet: nothing to sweep
  int removed = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (!HasSuffix(name, ".spill") && !HasSuffix(name, ".spill.staging")) {
      continue;
    }
    std::error_code rm_ec;
    if (std::filesystem::remove(entry.path(), rm_ec) && !rm_ec) ++removed;
  }
  return removed;
}

SpillFile::SpillFile(SpillContext* ctx, std::string path, std::FILE* file)
    : ctx_(ctx), path_(std::move(path)), file_(file) {}

Result<std::unique_ptr<SpillFile>> SpillFile::Create(SpillContext* ctx,
                                                     const std::string& path) {
  std::string staging = path + ".staging";
  std::FILE* f = std::fopen(staging.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create spill staging file '" + staging +
                           "': " + std::strerror(errno));
  }
  return std::unique_ptr<SpillFile>(new SpillFile(ctx, path, f));
}

SpillFile::~SpillFile() {
  if (file_ != nullptr) {
    // Error-path abandonment: close and delete the staging file so a
    // failed run leaves no debris (a *crashed* run leaves the staging
    // file for SweepSpillDirectory; see SimulateCrashForTest).
    std::fclose(file_);
    std::remove((path_ + ".staging").c_str());
    file_ = nullptr;
  }
}

Status SpillFile::AppendPage(const Table& page) {
  PROBKB_CHECK(file_ != nullptr && !committed_);
  encode_buf_.clear();
  EncodeTableColumnar(page, &encode_buf_);
  PageHeader header;
  header.payload_len = encode_buf_.size();
  header.checksum = ColumnarChecksum(encode_buf_.data(), encode_buf_.size());
  header.rows = page.NumRows();
  if (std::fwrite(&header, sizeof(header), 1, file_) != 1 ||
      (!encode_buf_.empty() &&
       std::fwrite(encode_buf_.data(), encode_buf_.size(), 1, file_) != 1)) {
    return Status::IOError("spill page write failed on '" + path_ +
                           ".staging' (disk full?)");
  }
  ++pages_;
  rows_ += page.NumRows();
  int64_t wrote = static_cast<int64_t>(sizeof(header) + encode_buf_.size());
  bytes_written_ += wrote;
  ctx_->stats().pages_written.fetch_add(1, std::memory_order_relaxed);
  ctx_->stats().bytes_written.fetch_add(wrote, std::memory_order_relaxed);
  return Status::OK();
}

Status SpillFile::Commit() {
  PROBKB_CHECK(file_ != nullptr && !committed_);
  std::string staging = path_ + ".staging";
  bool flushed = std::fflush(file_) == 0 && ::fsync(::fileno(file_)) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!flushed) {
    std::remove(staging.c_str());
    return Status::IOError("spill flush failed on '" + staging + "'");
  }
  if (std::rename(staging.c_str(), path_.c_str()) != 0) {
    std::remove(staging.c_str());
    return Status::IOError("spill commit rename failed for '" + path_ +
                           "': " + std::strerror(errno));
  }
  SyncDirectory(std::filesystem::path(path_).parent_path().string());
  committed_ = true;
  ctx_->TrackFile(path_);
  return Status::OK();
}

void SpillFile::SimulateCrashForTest() {
  PROBKB_CHECK(file_ != nullptr && !committed_);
  // Flush so the staging bytes are fully on disk — the worst case for a
  // sweep bug, since the file *looks* complete but was never committed.
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;  // dtor skips removal: the debris must survive
}

Result<TablePtr> ReadSpillFile(SpillContext* ctx, const Schema& schema,
                               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open spill file '" + path +
                           "': " + std::strerror(errno));
  }
  TablePtr out = Table::Make(schema);
  std::string payload;
  int64_t bytes_read = 0;
  Status status = Status::OK();
  for (;;) {
    PageHeader header;
    size_t got = std::fread(&header, 1, sizeof(header), f);
    if (got == 0) break;  // clean EOF between pages
    if (got != sizeof(header) || header.magic != kPageMagic ||
        header.payload_len > kMaxPageBytes) {
      status = Status::DataLoss("spill page header corrupt in '" + path + "'");
      break;
    }
    long payload_at = std::ftell(f);
    payload.resize(header.payload_len);
    bool page_ok = false;
    // One retry on checksum mismatch: a transient bad read (or an
    // injected corrupt-read token) heals on the second attempt; real
    // on-disk damage does not and surfaces as kDataLoss.
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (attempt > 0) {
        if (std::fseek(f, payload_at, SEEK_SET) != 0) break;
        ctx->stats().checksum_retries.fetch_add(1, std::memory_order_relaxed);
      }
      if (!payload.empty() &&
          std::fread(payload.data(), payload.size(), 1, f) != 1) {
        break;
      }
      if (ctx->TakeCorruptReadToken() && !payload.empty()) {
        payload[payload.size() / 2] =
            static_cast<char>(payload[payload.size() / 2] ^ 0x40);
      }
      if (ColumnarChecksum(payload.data(), payload.size()) ==
          header.checksum) {
        page_ok = true;
        break;
      }
    }
    if (!page_ok) {
      status = Status::DataLoss("spill page checksum mismatch in '" + path +
                                "' (page " + std::to_string(out->NumRows()) +
                                " rows in)");
      break;
    }
    auto page = DecodeTableColumnar(schema, payload);
    if (!page.ok()) {
      status = page.status();
      break;
    }
    if ((*page)->NumRows() != header.rows) {
      status = Status::DataLoss("spill page row count mismatch in '" + path +
                                "'");
      break;
    }
    out->AppendTable(**page);
    bytes_read += static_cast<int64_t>(sizeof(header) + header.payload_len);
  }
  std::fclose(f);
  if (!status.ok()) return status;
  ctx->stats().page_faults_served.fetch_add(1, std::memory_order_relaxed);
  ctx->stats().bytes_read.fetch_add(bytes_read, std::memory_order_relaxed);
  return out;
}

SpillableTable::SpillableTable(SpillContext* ctx, Schema schema, int num_parts,
                               int bit_offset, std::string label,
                               bool with_row_ids)
    : ctx_(ctx),
      router_(num_parts, bit_offset),
      label_(std::move(label)),
      with_row_ids_(with_row_ids) {
  if (with_row_ids_) {
    std::vector<Field> fields = schema.fields();
    fields.push_back(Field{"__orig", ColumnType::kInt64});
    part_schema_ = Schema(std::move(fields));
  } else {
    part_schema_ = std::move(schema);
  }
  parts_.resize(static_cast<size_t>(num_parts));
  for (Partition& part : parts_) part.buffer = Table::Make(part_schema_);
  scatter_.resize(static_cast<size_t>(num_parts));
}

SpillableTable::~SpillableTable() {
  ChargeDelta(-buffered_charge_);
  buffered_charge_ = 0;
  for (size_t p = 0; p < parts_.size(); ++p) {
    UnpinPartition(static_cast<int>(p));
  }
  // Spill files are tracked by (and removed with) the SpillContext.
}

void SpillableTable::ChargeDelta(int64_t bytes) {
  MemoryBudget* budget = ctx_->budget();
  if (budget == nullptr || bytes == 0) return;
  if (bytes > 0) {
    budget->Charge(bytes);
  } else {
    budget->Release(-bytes);
  }
}

Status SpillableTable::AppendPartitioned(const Table& src,
                                         std::span<const size_t> hashes,
                                         int64_t begin, int64_t end) {
  PROBKB_CHECK(end - begin == static_cast<int64_t>(hashes.size()));
  for (auto& rows : scatter_) rows.clear();
  for (int64_t i = begin; i < end; ++i) {
    size_t p = router_.PartOf(hashes[static_cast<size_t>(i - begin)]);
    scatter_[p].push_back(i);
  }
  int64_t buffered_now = 0;
  for (size_t p = 0; p < parts_.size(); ++p) {
    Partition& part = parts_[p];
    const std::vector<int64_t>& rows = scatter_[p];
    if (!rows.empty()) {
      if (with_row_ids_) {
        part.buffer->AppendGatheredRowsWithIds(src, rows);
      } else {
        part.buffer->AppendGatheredRows(src, rows);
      }
      part.rows += static_cast<int64_t>(rows.size());
      total_rows_ += static_cast<int64_t>(rows.size());
      if (part.buffer->ByteSize() >= ctx_->page_bytes()) {
        PROBKB_RETURN_NOT_OK(FlushPartition(&part));
      }
    }
    buffered_now += part.buffer->ByteSize();
  }
  ChargeDelta(buffered_now - buffered_charge_);
  buffered_charge_ = buffered_now;
  return Status::OK();
}

Status SpillableTable::FlushPartition(Partition* part) {
  if (part->buffer->NumRows() == 0) return Status::OK();
  if (part->file == nullptr) {
    PROBKB_RETURN_NOT_OK(ctx_->Prepare());
    auto file = SpillFile::Create(ctx_, ctx_->NextFilePath(label_));
    if (!file.ok()) return file.status();
    part->file = std::move(*file);
    ctx_->stats().partitions_spilled.fetch_add(1, std::memory_order_relaxed);
  }
  PROBKB_RETURN_NOT_OK(part->file->AppendPage(*part->buffer));
  part->buffer = Table::Make(part_schema_);
  return Status::OK();
}

Status SpillableTable::Finish() {
  int64_t buffered_now = 0;
  for (Partition& part : parts_) {
    if (part.file != nullptr) {
      // Flush the tail so a spilled partition lives entirely on disk and
      // PinPartition is a pure page-in.
      PROBKB_RETURN_NOT_OK(FlushPartition(&part));
      PROBKB_RETURN_NOT_OK(part.file->Commit());
      part.committed_path = part.file->path();
    }
    buffered_now += part.buffer->ByteSize();
  }
  ChargeDelta(buffered_now - buffered_charge_);
  buffered_charge_ = buffered_now;
  return Status::OK();
}

int64_t SpillableTable::PartitionRows(int p) const {
  return parts_[static_cast<size_t>(p)].rows;
}

bool SpillableTable::IsSpilled(int p) const {
  const Partition& part = parts_[static_cast<size_t>(p)];
  return part.file != nullptr || !part.committed_path.empty();
}

Result<TablePtr> SpillableTable::PinPartition(int p) {
  Partition& part = parts_[static_cast<size_t>(p)];
  if (part.pinned != nullptr) return part.pinned;
  if (part.committed_path.empty()) {
    PROBKB_CHECK(part.file == nullptr);  // Finish() must run first
    return part.buffer;  // resident: already charged as buffer bytes
  }
  auto paged = ReadSpillFile(ctx_, part_schema_, part.committed_path);
  if (!paged.ok()) return paged.status();
  if ((*paged)->NumRows() != part.rows) {
    return Status::DataLoss("spilled partition '" + part.committed_path +
                            "' paged in " +
                            std::to_string((*paged)->NumRows()) +
                            " rows, expected " + std::to_string(part.rows));
  }
  part.pinned = std::move(*paged);
  part.pinned_charge = part.pinned->ByteSize();
  ChargeDelta(part.pinned_charge);
  return part.pinned;
}

void SpillableTable::UnpinPartition(int p) {
  Partition& part = parts_[static_cast<size_t>(p)];
  if (part.pinned == nullptr) return;
  ChargeDelta(-part.pinned_charge);
  part.pinned.reset();
  part.pinned_charge = 0;
}

int64_t SpillableTable::ResidentByteSize() const {
  int64_t bytes = 0;
  for (const Partition& part : parts_) {
    bytes += part.buffer->ByteSize();
    if (part.pinned != nullptr) bytes += part.pinned->ByteSize();
  }
  return bytes;
}

}  // namespace probkb
