#ifndef PROBKB_RELATIONAL_VALUE_H_
#define PROBKB_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace probkb {

/// \brief Column types supported by the engine.
///
/// ProbKB dictionary-encodes every entity/class/relation to int64 ids
/// (Section 4.2 of the paper), so the engine only needs integers, weights,
/// and NULL (used for to-be-inferred weights during grounding).
enum class ColumnType : uint8_t { kInt64 = 0, kFloat64 = 1 };

const char* ColumnTypeToString(ColumnType type);

/// \brief A nullable scalar: NULL, int64, or float64. 16 bytes, trivially
/// copyable.
class Value {
 public:
  constexpr Value() : tag_(Tag::kNull), i64_(0) {}
  static constexpr Value Null() { return Value(); }
  static constexpr Value Int64(int64_t v) { return Value(Tag::kInt64, v); }
  static constexpr Value Float64(double v) { return Value(v); }

  bool is_null() const { return tag_ == Tag::kNull; }
  bool is_int64() const { return tag_ == Tag::kInt64; }
  bool is_float64() const { return tag_ == Tag::kFloat64; }

  /// Precondition: is_int64(). (Callers index dictionary-encoded columns.)
  int64_t i64() const { return i64_; }
  /// Precondition: is_float64().
  double f64() const { return f64_; }

  /// \brief Value equality; NULL == NULL is true here (SQL DISTINCT
  /// semantics, which is what grounding's set-union needs).
  friend bool operator==(const Value& a, const Value& b) {
    if (a.tag_ != b.tag_) return false;
    switch (a.tag_) {
      case Tag::kNull:
        return true;
      case Tag::kInt64:
        return a.i64_ == b.i64_;
      case Tag::kFloat64:
        return a.f64_ == b.f64_;
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// \brief Total order: NULL < ints < floats; used for stable sorting in
  /// tests and result printing.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.tag_ != b.tag_) return a.tag_ < b.tag_;
    switch (a.tag_) {
      case Tag::kNull:
        return false;
      case Tag::kInt64:
        return a.i64_ < b.i64_;
      case Tag::kFloat64:
        return a.f64_ < b.f64_;
    }
    return false;
  }

  size_t Hash() const {
    uint64_t h = 0;
    switch (tag_) {
      case Tag::kNull:
        h = 0x9E3779B97F4A7C15ULL;
        break;
      case Tag::kInt64:
        h = static_cast<uint64_t>(i64_);
        break;
      case Tag::kFloat64: {
        // Normalize -0.0 to 0.0 so equal values hash equally.
        double d = f64_ == 0.0 ? 0.0 : f64_;
        h = std::hash<double>{}(d);
        break;
      }
    }
    // Fibonacci-style mix.
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }

  std::string ToString() const;

 private:
  enum class Tag : uint8_t { kNull = 0, kInt64 = 1, kFloat64 = 2 };
  constexpr Value(Tag tag, int64_t v) : tag_(tag), i64_(v) {}
  constexpr explicit Value(double v) : tag_(Tag::kFloat64), f64_(v) {}

  Tag tag_;
  union {
    int64_t i64_;
    double f64_;
  };
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_VALUE_H_
