#ifndef PROBKB_RELATIONAL_VALUE_H_
#define PROBKB_RELATIONAL_VALUE_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <string>

namespace probkb {

/// \brief Column types supported by the engine.
///
/// ProbKB dictionary-encodes every entity/class/relation to int64 ids
/// (Section 4.2 of the paper), so the engine only needs integers, weights,
/// and NULL (used for to-be-inferred weights during grounding).
enum class ColumnType : uint8_t { kInt64 = 0, kFloat64 = 1 };

const char* ColumnTypeToString(ColumnType type);

/// Per-type hash primitives shared by Value::Hash and the columnar batch
/// hashers (Table::HashRows): both paths must produce identical hashes or
/// a batched probe would miss chains the scalar path built.
namespace value_hash {

inline uint64_t Mix(uint64_t h) {
  // Fibonacci-style mix.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

inline size_t OfNull() {
  return static_cast<size_t>(Mix(0x9E3779B97F4A7C15ULL));
}

inline size_t OfInt64(int64_t v) {
  return static_cast<size_t>(Mix(static_cast<uint64_t>(v)));
}

inline size_t OfFloat64(double d) {
  // Normalize -0.0 to 0.0 and every NaN payload to one canonical NaN so
  // equal (or all-NaN) values land in one hash chain.
  if (d == 0.0) d = 0.0;
  if (std::isnan(d)) d = std::numeric_limits<double>::quiet_NaN();
  return static_cast<size_t>(Mix(std::hash<double>{}(d)));
}

}  // namespace value_hash

/// \brief A nullable scalar: NULL, int64, or float64. 16 bytes, trivially
/// copyable.
class Value {
 public:
  constexpr Value() : tag_(Tag::kNull), i64_(0) {}
  static constexpr Value Null() { return Value(); }
  static constexpr Value Int64(int64_t v) { return Value(Tag::kInt64, v); }
  static constexpr Value Float64(double v) { return Value(v); }

  bool is_null() const { return tag_ == Tag::kNull; }
  bool is_int64() const { return tag_ == Tag::kInt64; }
  bool is_float64() const { return tag_ == Tag::kFloat64; }

  /// Precondition: is_int64(). (Callers index dictionary-encoded columns.)
  int64_t i64() const { return i64_; }
  /// Precondition: is_float64().
  double f64() const { return f64_; }

  /// \brief Value equality; NULL == NULL is true here (SQL DISTINCT
  /// semantics, which is what grounding's set-union needs).
  friend bool operator==(const Value& a, const Value& b) {
    if (a.tag_ != b.tag_) return false;
    switch (a.tag_) {
      case Tag::kNull:
        return true;
      case Tag::kInt64:
        return a.i64_ == b.i64_;
      case Tag::kFloat64:
        return a.f64_ == b.f64_;
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// \brief Total order: NULL < ints < floats; used for stable sorting in
  /// tests and result printing.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.tag_ != b.tag_) return a.tag_ < b.tag_;
    switch (a.tag_) {
      case Tag::kNull:
        return false;
      case Tag::kInt64:
        return a.i64_ < b.i64_;
      case Tag::kFloat64:
        return a.f64_ < b.f64_;
    }
    return false;
  }

  size_t Hash() const {
    switch (tag_) {
      case Tag::kNull:
        return value_hash::OfNull();
      case Tag::kInt64:
        return value_hash::OfInt64(i64_);
      case Tag::kFloat64:
        return value_hash::OfFloat64(f64_);
    }
    return 0;
  }

  std::string ToString() const;

 private:
  enum class Tag : uint8_t { kNull = 0, kInt64 = 1, kFloat64 = 2 };
  constexpr Value(Tag tag, int64_t v) : tag_(tag), i64_(v) {}
  constexpr explicit Value(double v) : tag_(Tag::kFloat64), f64_(v) {}

  Tag tag_;
  union {
    int64_t i64_;
    double f64_;
  };
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_VALUE_H_
