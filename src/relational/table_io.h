#ifndef PROBKB_RELATIONAL_TABLE_IO_H_
#define PROBKB_RELATIONAL_TABLE_IO_H_

#include <iosfwd>
#include <string>

#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief Writes a table as tab-separated values with a `# name TYPE ...`
/// header line; NULL is written as `\N` (PostgreSQL COPY convention).
///
/// This is the interchange format between grounding and external inference
/// engines: the paper pipes the factor table TPhi to GraphLab in exactly
/// this spirit (Figure 1's architecture).
Status WriteTableTsv(const Table& table, std::ostream* out);
Status WriteTableTsvFile(const Table& table, const std::string& path);

/// \brief Reads a TSV written by WriteTableTsv; validates the header
/// against `schema`.
Result<TablePtr> ReadTableTsv(const Schema& schema, std::istream* in);
Result<TablePtr> ReadTableTsvFile(const Schema& schema,
                                  const std::string& path);

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_TABLE_IO_H_
