#ifndef PROBKB_RELATIONAL_TABLE_IO_H_
#define PROBKB_RELATIONAL_TABLE_IO_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief Writes a table as tab-separated values with a `# name TYPE ...`
/// header line; NULL is written as `\N` (PostgreSQL COPY convention).
///
/// This is the interchange format between grounding and external inference
/// engines: the paper pipes the factor table TPhi to GraphLab in exactly
/// this spirit (Figure 1's architecture).
Status WriteTableTsv(const Table& table, std::ostream* out);
Status WriteTableTsvFile(const Table& table, const std::string& path);

/// \brief Reads a TSV written by WriteTableTsv; validates the header
/// against `schema`.
Result<TablePtr> ReadTableTsv(const Schema& schema, std::istream* in);
Result<TablePtr> ReadTableTsvFile(const Schema& schema,
                                  const std::string& path);

/// \brief Lossless columnar table encoding shared by the MPP wire (PR 6's
/// frame payloads — wire::SerializeTable delegates here) and the spill
/// layer's page files: rows, width, then per column a type tag, the raw
/// 8-byte cell words straight from the typed vectors (doubles round-trip
/// bit for bit, NULL cells keep their zero sentinel), and an optional null
/// bitmap. Hoisted into relational so spill.cc can reuse one byte format
/// without depending on the runtime layer.
void EncodeTableColumnar(const Table& table, std::string* out);

/// \brief Inverse of EncodeTableColumnar; validates the encoded shape
/// against `schema` and rebuilds the table byte-identically (columnar
/// inserts via Table::AppendColumnarRows, no per-cell materialization).
Result<TablePtr> DecodeTableColumnar(const Schema& schema,
                                     std::string_view bytes);

/// \brief Order-sensitive checksum over `len` bytes: value_hash::Mix of
/// each 8-byte word (tail zero-padded) folded with CombineRowHash, plus
/// the length. The wire's FrameChecksum and the spill page checksum.
uint64_t ColumnarChecksum(const void* data, size_t len);

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_TABLE_IO_H_
