#include "relational/catalog.h"

namespace probkb {

Status Catalog::Register(const std::string& name, TablePtr table) {
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("table '" + name + "' already registered");
  }
  return Status::OK();
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return it->second;
}

Status Catalog::Drop(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table '" + name + "' not in catalog");
  }
  return Status::OK();
}

std::shared_ptr<const CatalogSnapshot> Catalog::Snapshot() const {
  auto snapshot = std::make_shared<CatalogSnapshot>();
  for (const auto& [name, table] : tables_) {
    snapshot->tables_.emplace(name, table->Snapshot());
  }
  return snapshot;
}

Result<ConstTablePtr> CatalogSnapshot::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not in snapshot");
  }
  return it->second;
}

}  // namespace probkb
