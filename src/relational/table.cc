#include "relational/table.h"

#include <algorithm>
#include <sstream>

namespace probkb {

std::string RowView::ToString() const {
  std::string out = "[";
  for (int i = 0; i < width_; ++i) {
    if (i > 0) out += ", ";
    out += data_[i].ToString();
  }
  out += "]";
  return out;
}

void Table::AppendTable(const Table& other) {
  PROBKB_CHECK(other.width() == width());
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
}

int64_t Table::FilterInPlace(const std::vector<bool>& keep) {
  PROBKB_CHECK(static_cast<int64_t>(keep.size()) == NumRows());
  const int w = width();
  int64_t write = 0;
  int64_t removed = 0;
  for (int64_t r = 0; r < NumRows(); ++r) {
    if (keep[static_cast<size_t>(r)]) {
      if (write != r) {
        std::copy(values_.begin() + r * w, values_.begin() + (r + 1) * w,
                  values_.begin() + write * w);
      }
      ++write;
    } else {
      ++removed;
    }
  }
  values_.resize(static_cast<size_t>(write * w));
  return removed;
}

TablePtr Table::Clone() const {
  auto out = Table::Make(schema_);
  out->values_ = values_;
  return out;
}

std::string Table::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " rows=" << NumRows() << "\n";
  int64_t n = std::min<int64_t>(NumRows(), max_rows);
  for (int64_t i = 0; i < n; ++i) {
    os << "  " << row(i).ToString() << "\n";
  }
  if (n < NumRows()) os << "  ... (" << (NumRows() - n) << " more)\n";
  return os.str();
}

std::vector<std::vector<Value>> Table::SortedRows() const {
  std::vector<std::vector<Value>> rows;
  rows.reserve(static_cast<size_t>(NumRows()));
  for (int64_t i = 0; i < NumRows(); ++i) {
    auto view = row(i);
    rows.emplace_back(view.values().begin(), view.values().end());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

size_t HashRowKey(const RowView& row, std::span<const int> key_cols) {
  size_t h = 0x243F6A8885A308D3ULL;  // pi digits
  for (int c : key_cols) {
    h ^= row[c].Hash() + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowKeyEquals(const RowView& a, const RowView& b,
                  std::span<const int> a_cols, std::span<const int> b_cols) {
  PROBKB_DCHECK(a_cols.size() == b_cols.size());
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (a[a_cols[i]] != b[b_cols[i]]) return false;
  }
  return true;
}

}  // namespace probkb
