#include "relational/table.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace probkb {

std::string RowView::ToString() const {
  std::string out = "[";
  for (int i = 0; i < width_; ++i) {
    if (i > 0) out += ", ";
    out += (*this)[i].ToString();
  }
  out += "]";
  return out;
}

void Table::ExtendNullWords(int64_t n) {
  const size_t words = static_cast<size_t>((num_rows_ + n + 63) >> 6);
  for (int ci = 0; ci < width(); ++ci) {
    Column& c = Mut(ci);
    if (c.null_words.size() < words) c.null_words.resize(words, 0);
  }
}

void Table::AppendRow(std::span<const Value> row) {
  PROBKB_DCHECK(static_cast<int>(row.size()) == width());
  ExtendNullWords(1);
  const int64_t r = num_rows_;
  for (size_t ci = 0; ci < cols_.size(); ++ci) {
    Column& c = Mut(static_cast<int>(ci));
    const Value& v = row[ci];
    if (v.is_null()) {
      SetNullBit(&c, r);
      if (c.type == ColumnType::kInt64) {
        c.i64.push_back(0);
      } else {
        c.f64.push_back(0.0);
      }
    } else if (c.type == ColumnType::kInt64) {
      PROBKB_DCHECK(v.is_int64());
      c.i64.push_back(v.i64());
    } else {
      PROBKB_DCHECK(v.is_float64());
      c.f64.push_back(v.f64());
    }
  }
  ++num_rows_;
}

void Table::AppendRow(const RowView& row) {
  const Table* src = row.backing_table();
  if (src != nullptr) {
    AppendRows(*src, row.row_index(), row.row_index() + 1);
    return;
  }
  PROBKB_DCHECK(row.width() == width());
  ExtendNullWords(1);
  const int64_t r = num_rows_;
  for (int ci = 0; ci < width(); ++ci) {
    Column& c = Mut(ci);
    const Value v = row[ci];
    if (v.is_null()) {
      SetNullBit(&c, r);
      if (c.type == ColumnType::kInt64) {
        c.i64.push_back(0);
      } else {
        c.f64.push_back(0.0);
      }
    } else if (c.type == ColumnType::kInt64) {
      PROBKB_DCHECK(v.is_int64());
      c.i64.push_back(v.i64());
    } else {
      PROBKB_DCHECK(v.is_float64());
      c.f64.push_back(v.f64());
    }
  }
  ++num_rows_;
}

void Table::AppendRows(const Table& src, int64_t begin, int64_t end) {
  PROBKB_CHECK(src.width() == width());
  PROBKB_DCHECK(begin >= 0 && begin <= end && end <= src.NumRows());
  const int64_t n = end - begin;
  if (n == 0) return;
  ExtendNullWords(n);
  for (size_t ci = 0; ci < cols_.size(); ++ci) {
    Column& dst = Mut(static_cast<int>(ci));
    const Column& from = *src.cols_[ci];
    PROBKB_DCHECK(dst.type == from.type);
    if (dst.type == ColumnType::kInt64) {
      dst.i64.insert(dst.i64.end(), from.i64.begin() + begin,
                     from.i64.begin() + end);
    } else {
      dst.f64.insert(dst.f64.end(), from.f64.begin() + begin,
                     from.f64.begin() + end);
    }
    if (from.null_count > 0) {
      for (int64_t r = begin; r < end; ++r) {
        if (IsNullBit(from, r)) SetNullBit(&dst, num_rows_ + (r - begin));
      }
    }
  }
  num_rows_ += n;
}

void Table::AppendProjectedRows(const Table& src,
                                std::span<const int> src_cols) {
  PROBKB_CHECK(static_cast<int>(src_cols.size()) == width());
  const int64_t n = src.NumRows();
  if (n == 0) return;
  ExtendNullWords(n);
  for (size_t ci = 0; ci < cols_.size(); ++ci) {
    Column& dst = Mut(static_cast<int>(ci));
    const Column& from = *src.cols_[static_cast<size_t>(src_cols[ci])];
    PROBKB_CHECK(dst.type == from.type);
    if (dst.type == ColumnType::kInt64) {
      dst.i64.insert(dst.i64.end(), from.i64.begin(), from.i64.end());
    } else {
      dst.f64.insert(dst.f64.end(), from.f64.begin(), from.f64.end());
    }
    if (from.null_count > 0) {
      for (int64_t r = 0; r < n; ++r) {
        if (IsNullBit(from, r)) SetNullBit(&dst, num_rows_ + r);
      }
    }
  }
  num_rows_ += n;
}

void Table::AppendProjectedRows(const Table& src,
                                std::span<const int> src_cols, int64_t begin,
                                int64_t end) {
  PROBKB_CHECK(static_cast<int>(src_cols.size()) == width());
  PROBKB_DCHECK(begin >= 0 && begin <= end && end <= src.NumRows());
  const int64_t n = end - begin;
  if (n == 0) return;
  ExtendNullWords(n);
  for (size_t ci = 0; ci < cols_.size(); ++ci) {
    Column& dst = Mut(static_cast<int>(ci));
    const Column& from = *src.cols_[static_cast<size_t>(src_cols[ci])];
    PROBKB_CHECK(dst.type == from.type);
    if (dst.type == ColumnType::kInt64) {
      dst.i64.insert(dst.i64.end(), from.i64.begin() + begin,
                     from.i64.begin() + end);
    } else {
      dst.f64.insert(dst.f64.end(), from.f64.begin() + begin,
                     from.f64.begin() + end);
    }
    if (from.null_count > 0) {
      for (int64_t r = begin; r < end; ++r) {
        if (IsNullBit(from, r)) SetNullBit(&dst, num_rows_ + (r - begin));
      }
    }
  }
  num_rows_ += n;
}

namespace {

/// Gathers `rows` elements of `from` onto the end of `to`.
template <typename T>
void GatherInto(std::vector<T>* to, const std::vector<T>& from,
                std::span<const int64_t> rows) {
  to->reserve(to->size() + rows.size());
  for (int64_t r : rows) to->push_back(from[static_cast<size_t>(r)]);
}

}  // namespace

void Table::AppendGatheredRows(const Table& src,
                               std::span<const int64_t> rows) {
  PROBKB_CHECK(src.width() == width());
  const int64_t n = static_cast<int64_t>(rows.size());
  if (n == 0) return;
  ExtendNullWords(n);
  for (size_t ci = 0; ci < cols_.size(); ++ci) {
    Column& dst = Mut(static_cast<int>(ci));
    const Column& from = *src.cols_[ci];
    PROBKB_DCHECK(dst.type == from.type);
    if (dst.type == ColumnType::kInt64) {
      GatherInto(&dst.i64, from.i64, rows);
    } else {
      GatherInto(&dst.f64, from.f64, rows);
    }
    if (from.null_count > 0) {
      for (int64_t i = 0; i < n; ++i) {
        if (IsNullBit(from, rows[static_cast<size_t>(i)])) {
          SetNullBit(&dst, num_rows_ + i);
        }
      }
    }
  }
  num_rows_ += n;
}

void Table::AppendGatheredRowsWithIds(const Table& src,
                                      std::span<const int64_t> rows) {
  PROBKB_CHECK(src.width() + 1 == width());
  const int64_t n = static_cast<int64_t>(rows.size());
  if (n == 0) return;
  ExtendNullWords(n);
  for (int ci = 0; ci < src.width(); ++ci) {
    Column& dst = Mut(ci);
    const Column& from = *src.cols_[static_cast<size_t>(ci)];
    PROBKB_DCHECK(dst.type == from.type);
    if (dst.type == ColumnType::kInt64) {
      GatherInto(&dst.i64, from.i64, rows);
    } else {
      GatherInto(&dst.f64, from.f64, rows);
    }
    if (from.null_count > 0) {
      for (int64_t i = 0; i < n; ++i) {
        if (IsNullBit(from, rows[static_cast<size_t>(i)])) {
          SetNullBit(&dst, num_rows_ + i);
        }
      }
    }
  }
  Column& ids = Mut(width() - 1);
  PROBKB_CHECK(ids.type == ColumnType::kInt64);
  ids.i64.insert(ids.i64.end(), rows.begin(), rows.end());
  num_rows_ += n;
}

void Table::AppendColumnarRows(int64_t rows,
                               std::span<const ColumnWords> cols) {
  PROBKB_CHECK(static_cast<int>(cols.size()) == width());
  if (rows == 0) return;
  ExtendNullWords(rows);
  for (size_t ci = 0; ci < cols_.size(); ++ci) {
    Column& dst = Mut(static_cast<int>(ci));
    const ColumnWords& from = cols[ci];
    // memcpy, not typed-pointer inserts: the encoded words sit at odd
    // offsets inside a page payload (after 1-byte type tags), so a typed
    // load would be misaligned.
    if (dst.type == ColumnType::kInt64) {
      const size_t old = dst.i64.size();
      dst.i64.resize(old + static_cast<size_t>(rows));
      std::memcpy(dst.i64.data() + old, from.words,
                  static_cast<size_t>(rows) * sizeof(int64_t));
    } else {
      const size_t old = dst.f64.size();
      dst.f64.resize(old + static_cast<size_t>(rows));
      std::memcpy(dst.f64.data() + old, from.words,
                  static_cast<size_t>(rows) * sizeof(double));
    }
    if (from.null_bitmap != nullptr) {
      for (int64_t r = 0; r < rows; ++r) {
        if ((from.null_bitmap[static_cast<size_t>(r >> 6)] >>
             (static_cast<uint64_t>(r) & 63)) &
            1) {
          SetNullBit(&dst, num_rows_ + r);
        }
      }
    }
  }
  num_rows_ += rows;
}

void Table::ReserveRows(int64_t n) {
  const size_t rows = static_cast<size_t>(num_rows_ + n);
  for (int ci = 0; ci < width(); ++ci) {
    Column& c = Mut(ci);
    if (c.type == ColumnType::kInt64) {
      c.i64.reserve(rows);
    } else {
      c.f64.reserve(rows);
    }
    c.null_words.reserve((rows + 63) >> 6);
  }
}

void Table::Clear() {
  // Fresh columns instead of clear-in-place: a shared (snapshotted) column
  // keeps its rows for the readers holding it, and an exclusive one is
  // released rather than detached-then-cleared.
  for (ColumnPtr& p : cols_) {
    auto fresh = std::make_shared<Column>();
    fresh->type = p->type;
    p = std::move(fresh);
  }
  num_rows_ = 0;
}

int64_t Table::FilterInPlace(const std::vector<bool>& keep) {
  PROBKB_CHECK(static_cast<int64_t>(keep.size()) == NumRows());
  const int64_t n = num_rows_;
  int64_t write = 0;
  for (int64_t r = 0; r < n; ++r) {
    if (keep[static_cast<size_t>(r)]) ++write;
  }
  const int64_t kept = write;
  for (int ci = 0; ci < width(); ++ci) {
    Column& c = Mut(ci);
    write = 0;
    if (c.type == ColumnType::kInt64) {
      for (int64_t r = 0; r < n; ++r) {
        if (keep[static_cast<size_t>(r)]) {
          c.i64[static_cast<size_t>(write++)] = c.i64[static_cast<size_t>(r)];
        }
      }
      c.i64.resize(static_cast<size_t>(kept));
    } else {
      for (int64_t r = 0; r < n; ++r) {
        if (keep[static_cast<size_t>(r)]) {
          c.f64[static_cast<size_t>(write++)] = c.f64[static_cast<size_t>(r)];
        }
      }
      c.f64.resize(static_cast<size_t>(kept));
    }
    if (c.null_count > 0) {
      std::vector<uint64_t> words(static_cast<size_t>((kept + 63) >> 6), 0);
      int64_t nulls = 0;
      write = 0;
      for (int64_t r = 0; r < n; ++r) {
        if (!keep[static_cast<size_t>(r)]) continue;
        if (IsNullBit(c, r)) {
          words[static_cast<size_t>(write >> 6)] |=
              uint64_t{1} << (static_cast<uint64_t>(write) & 63);
          ++nulls;
        }
        ++write;
      }
      c.null_words = std::move(words);
      c.null_count = nulls;
    } else {
      c.null_words.resize(static_cast<size_t>((kept + 63) >> 6));
    }
  }
  num_rows_ = kept;
  return n - kept;
}

TablePtr Table::Clone() const {
  // Shares the columns; either table detaches the ones it later mutates
  // (copy-on-write), so the copy has deep-copy semantics at O(width) cost.
  auto out = Table::Make(schema_);
  out->num_rows_ = num_rows_;
  out->cols_ = cols_;
  return out;
}

std::shared_ptr<const Table> Table::Snapshot() const {
  auto out = std::make_shared<Table>(schema_);
  out->num_rows_ = num_rows_;
  out->cols_ = cols_;
  return out;
}

void Table::SetFloat64(int64_t row, int col, double v) {
  PROBKB_DCHECK(row >= 0 && row < NumRows());
  Column& c = Mut(col);
  PROBKB_CHECK(c.type == ColumnType::kFloat64);
  c.f64[static_cast<size_t>(row)] = v;
  if (c.null_count > 0 && IsNullBit(c, row)) {
    c.null_words[static_cast<size_t>(row >> 6)] &=
        ~(uint64_t{1} << (static_cast<uint64_t>(row) & 63));
    --c.null_count;
  }
}

void Table::HashRows(std::span<const int> key_cols, int64_t begin,
                     int64_t end, size_t* out) const {
  PROBKB_DCHECK(begin >= 0 && begin <= end && end <= NumRows());
  const int64_t n = end - begin;
  for (int64_t i = 0; i < n; ++i) out[i] = kRowHashSeed;
  for (int kc : key_cols) {
    const Column& c = *cols_[static_cast<size_t>(kc)];
    if (c.type == ColumnType::kInt64) {
      const int64_t* data = c.i64.data() + begin;
      if (c.null_count == 0) {
        for (int64_t i = 0; i < n; ++i) {
          out[i] = CombineRowHash(out[i], value_hash::OfInt64(data[i]));
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          out[i] = CombineRowHash(out[i], IsNullBit(c, begin + i)
                                              ? value_hash::OfNull()
                                              : value_hash::OfInt64(data[i]));
        }
      }
    } else {
      const double* data = c.f64.data() + begin;
      if (c.null_count == 0) {
        for (int64_t i = 0; i < n; ++i) {
          out[i] = CombineRowHash(out[i], value_hash::OfFloat64(data[i]));
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          out[i] = CombineRowHash(out[i],
                                  IsNullBit(c, begin + i)
                                      ? value_hash::OfNull()
                                      : value_hash::OfFloat64(data[i]));
        }
      }
    }
  }
}

std::string Table::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " rows=" << NumRows() << "\n";
  int64_t n = std::min<int64_t>(NumRows(), max_rows);
  for (int64_t i = 0; i < n; ++i) {
    os << "  " << row(i).ToString() << "\n";
  }
  if (n < NumRows()) os << "  ... (" << (NumRows() - n) << " more)\n";
  return os.str();
}

std::vector<std::vector<Value>> Table::SortedRows() const {
  std::vector<std::vector<Value>> rows;
  rows.reserve(static_cast<size_t>(NumRows()));
  for (int64_t i = 0; i < NumRows(); ++i) {
    std::vector<Value> materialized;
    materialized.reserve(static_cast<size_t>(width()));
    for (int c = 0; c < width(); ++c) materialized.push_back(ValueAt(i, c));
    rows.push_back(std::move(materialized));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

size_t HashRowKey(const RowView& row, std::span<const int> key_cols) {
  size_t h = kRowHashSeed;
  for (int c : key_cols) {
    h = CombineRowHash(h, row[c].Hash());
  }
  return h;
}

bool RowKeyEquals(const RowView& a, const RowView& b,
                  std::span<const int> a_cols, std::span<const int> b_cols) {
  PROBKB_DCHECK(a_cols.size() == b_cols.size());
  for (size_t i = 0; i < a_cols.size(); ++i) {
    if (a[a_cols[i]] != b[b_cols[i]]) return false;
  }
  return true;
}

}  // namespace probkb
