#include "relational/table_io.h"

#include <cinttypes>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "util/strings.h"

namespace probkb {

namespace {

void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
void AppendPod(std::string* out, T v) {
  AppendRaw(out, &v, sizeof(T));
}

template <typename T>
bool ReadPod(std::string_view* in, T* out) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(out, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

}  // namespace

void EncodeTableColumnar(const Table& table, std::string* out) {
  const int width = table.width();
  const int64_t rows = table.NumRows();
  AppendPod(out, rows);
  AppendPod(out, static_cast<int32_t>(width));
  for (int c = 0; c < width; ++c) {
    const ColumnType type = table.schema().field(c).type;
    AppendPod(out, static_cast<uint8_t>(type));
    // Raw 8-byte cell words straight from the typed vectors: doubles
    // round-trip bit for bit and NULL cells keep their zero sentinel.
    if (type == ColumnType::kInt64) {
      AppendRaw(out, table.Int64Data(c),
                static_cast<size_t>(rows) * sizeof(int64_t));
    } else {
      AppendRaw(out, table.Float64Data(c),
                static_cast<size_t>(rows) * sizeof(double));
    }
    const uint8_t has_nulls = table.ColumnHasNulls(c) ? 1 : 0;
    AppendPod(out, has_nulls);
    if (has_nulls) {
      const size_t words = static_cast<size_t>((rows + 63) >> 6);
      std::vector<uint64_t> bitmap(words, 0);
      for (int64_t r = 0; r < rows; ++r) {
        if (table.IsNull(r, c)) {
          bitmap[static_cast<size_t>(r >> 6)] |=
              uint64_t{1} << (static_cast<uint64_t>(r) & 63);
        }
      }
      AppendRaw(out, bitmap.data(), words * sizeof(uint64_t));
    }
  }
}

Result<TablePtr> DecodeTableColumnar(const Schema& schema,
                                     std::string_view bytes) {
  int64_t rows = 0;
  int32_t width = 0;
  if (!ReadPod(&bytes, &rows) || !ReadPod(&bytes, &width)) {
    return Status::DataLoss("table frame truncated before header");
  }
  if (rows < 0 || width != schema.num_fields()) {
    return Status::DataLoss("table frame shape mismatch");
  }
  // Decoded column-major and appended column-major: the raw cell words go
  // straight back into the typed vectors (AppendColumnarRows), with null
  // bits replayed from the bitmaps — byte-identical to the source table.
  std::vector<Table::ColumnWords> cols(static_cast<size_t>(width));
  std::vector<std::vector<uint64_t>> bitmaps(static_cast<size_t>(width));
  for (int c = 0; c < width; ++c) {
    uint8_t type_tag = 0;
    if (!ReadPod(&bytes, &type_tag)) {
      return Status::DataLoss("table frame truncated before column type");
    }
    const ColumnType type = static_cast<ColumnType>(type_tag);
    if (type != schema.field(c).type) {
      return Status::DataLoss("table frame column type mismatch");
    }
    const size_t data_bytes = static_cast<size_t>(rows) * 8;
    if (bytes.size() < data_bytes) {
      return Status::DataLoss("table frame truncated in column data");
    }
    cols[static_cast<size_t>(c)].words = bytes.data();
    bytes.remove_prefix(data_bytes);
    uint8_t has_nulls = 0;
    if (!ReadPod(&bytes, &has_nulls)) {
      return Status::DataLoss("table frame truncated before null marker");
    }
    if (has_nulls) {
      const size_t words = static_cast<size_t>((rows + 63) >> 6);
      if (bytes.size() < words * sizeof(uint64_t)) {
        return Status::DataLoss("table frame truncated in null bitmap");
      }
      // Copied out: the source view is not guaranteed 8-byte aligned.
      std::vector<uint64_t>& bitmap = bitmaps[static_cast<size_t>(c)];
      bitmap.resize(words);
      std::memcpy(bitmap.data(), bytes.data(), words * sizeof(uint64_t));
      cols[static_cast<size_t>(c)].null_bitmap = bitmap.data();
      bytes.remove_prefix(words * sizeof(uint64_t));
    }
  }
  if (!bytes.empty()) {
    return Status::DataLoss("table frame has trailing bytes");
  }
  TablePtr table = Table::Make(schema);
  table->AppendColumnarRows(rows, cols);
  return table;
}

uint64_t ColumnarChecksum(const void* data, size_t len) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t h = kRowHashSeed;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t word;
    std::memcpy(&word, bytes + i, 8);
    h = CombineRowHash(h, value_hash::Mix(word));
  }
  if (i < len) {
    uint64_t word = 0;
    std::memcpy(&word, bytes + i, len - i);
    h = CombineRowHash(h, value_hash::Mix(word));
  }
  return CombineRowHash(h, value_hash::Mix(static_cast<uint64_t>(len)));
}

Status WriteTableTsv(const Table& table, std::ostream* out) {
  const Schema& schema = table.schema();
  *out << "#";
  for (int c = 0; c < schema.num_fields(); ++c) {
    *out << " " << schema.field(c).name << " "
         << ColumnTypeToString(schema.field(c).type);
  }
  *out << "\n";
  for (int64_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.row(i);
    for (int c = 0; c < table.width(); ++c) {
      if (c > 0) *out << '\t';
      const Value v = row[c];
      if (v.is_null()) {
        *out << "\\N";
      } else if (v.is_int64()) {
        *out << v.i64();
      } else {
        *out << StrFormat("%.17g", v.f64());
      }
    }
    *out << "\n";
  }
  if (!out->good()) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteTableTsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  return WriteTableTsv(table, &out);
}

Result<TablePtr> ReadTableTsv(const Schema& schema, std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::ParseError("missing TSV header");
  }
  // Validate the header: "# name TYPE name TYPE ...".
  {
    auto tokens = Split(StripWhitespace(line), ' ');
    if (tokens.empty() || tokens[0] != "#") {
      return Status::ParseError("TSV header must start with '#'");
    }
    if (static_cast<int>(tokens.size()) != 1 + 2 * schema.num_fields()) {
      return Status::ParseError("TSV header arity mismatch");
    }
    for (int c = 0; c < schema.num_fields(); ++c) {
      const auto& name = tokens[static_cast<size_t>(1 + 2 * c)];
      const auto& type = tokens[static_cast<size_t>(2 + 2 * c)];
      if (name != schema.field(c).name ||
          type != ColumnTypeToString(schema.field(c).type)) {
        return Status::ParseError(
            StrFormat("TSV header column %d does not match schema %s", c,
                      schema.ToString().c_str()));
      }
    }
  }

  auto table = Table::Make(schema);
  std::vector<Value> row(static_cast<size_t>(schema.num_fields()));
  int64_t line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = Split(line, '\t');
    if (static_cast<int>(fields.size()) != schema.num_fields()) {
      return Status::ParseError(
          StrFormat("line %" PRId64 ": expected %d fields, got %zu", line_no,
                    schema.num_fields(), fields.size()));
    }
    for (int c = 0; c < schema.num_fields(); ++c) {
      std::string_view field = fields[static_cast<size_t>(c)];
      if (field == "\\N") {
        row[static_cast<size_t>(c)] = Value::Null();
      } else if (schema.field(c).type == ColumnType::kInt64) {
        int64_t v = 0;
        if (!ParseInt64(field, &v)) {
          return Status::ParseError(
              StrFormat("line %" PRId64 ": bad int64 in column %d", line_no,
                        c));
        }
        row[static_cast<size_t>(c)] = Value::Int64(v);
      } else {
        double v = 0;
        if (!ParseDouble(field, &v)) {
          return Status::ParseError(
              StrFormat("line %" PRId64 ": bad float64 in column %d",
                        line_no, c));
        }
        row[static_cast<size_t>(c)] = Value::Float64(v);
      }
    }
    table->AppendRow(row);
  }
  return table;
}

Result<TablePtr> ReadTableTsvFile(const Schema& schema,
                                  const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadTableTsv(schema, &in);
}

}  // namespace probkb
