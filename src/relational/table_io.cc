#include "relational/table_io.h"

#include <cinttypes>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/strings.h"

namespace probkb {

Status WriteTableTsv(const Table& table, std::ostream* out) {
  const Schema& schema = table.schema();
  *out << "#";
  for (int c = 0; c < schema.num_fields(); ++c) {
    *out << " " << schema.field(c).name << " "
         << ColumnTypeToString(schema.field(c).type);
  }
  *out << "\n";
  for (int64_t i = 0; i < table.NumRows(); ++i) {
    RowView row = table.row(i);
    for (int c = 0; c < table.width(); ++c) {
      if (c > 0) *out << '\t';
      const Value v = row[c];
      if (v.is_null()) {
        *out << "\\N";
      } else if (v.is_int64()) {
        *out << v.i64();
      } else {
        *out << StrFormat("%.17g", v.f64());
      }
    }
    *out << "\n";
  }
  if (!out->good()) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteTableTsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for write");
  return WriteTableTsv(table, &out);
}

Result<TablePtr> ReadTableTsv(const Schema& schema, std::istream* in) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::ParseError("missing TSV header");
  }
  // Validate the header: "# name TYPE name TYPE ...".
  {
    auto tokens = Split(StripWhitespace(line), ' ');
    if (tokens.empty() || tokens[0] != "#") {
      return Status::ParseError("TSV header must start with '#'");
    }
    if (static_cast<int>(tokens.size()) != 1 + 2 * schema.num_fields()) {
      return Status::ParseError("TSV header arity mismatch");
    }
    for (int c = 0; c < schema.num_fields(); ++c) {
      const auto& name = tokens[static_cast<size_t>(1 + 2 * c)];
      const auto& type = tokens[static_cast<size_t>(2 + 2 * c)];
      if (name != schema.field(c).name ||
          type != ColumnTypeToString(schema.field(c).type)) {
        return Status::ParseError(
            StrFormat("TSV header column %d does not match schema %s", c,
                      schema.ToString().c_str()));
      }
    }
  }

  auto table = Table::Make(schema);
  std::vector<Value> row(static_cast<size_t>(schema.num_fields()));
  int64_t line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = Split(line, '\t');
    if (static_cast<int>(fields.size()) != schema.num_fields()) {
      return Status::ParseError(
          StrFormat("line %" PRId64 ": expected %d fields, got %zu", line_no,
                    schema.num_fields(), fields.size()));
    }
    for (int c = 0; c < schema.num_fields(); ++c) {
      std::string_view field = fields[static_cast<size_t>(c)];
      if (field == "\\N") {
        row[static_cast<size_t>(c)] = Value::Null();
      } else if (schema.field(c).type == ColumnType::kInt64) {
        int64_t v = 0;
        if (!ParseInt64(field, &v)) {
          return Status::ParseError(
              StrFormat("line %" PRId64 ": bad int64 in column %d", line_no,
                        c));
        }
        row[static_cast<size_t>(c)] = Value::Int64(v);
      } else {
        double v = 0;
        if (!ParseDouble(field, &v)) {
          return Status::ParseError(
              StrFormat("line %" PRId64 ": bad float64 in column %d",
                        line_no, c));
        }
        row[static_cast<size_t>(c)] = Value::Float64(v);
      }
    }
    table->AppendRow(row);
  }
  return table;
}

Result<TablePtr> ReadTableTsvFile(const Schema& schema,
                                  const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  return ReadTableTsv(schema, &in);
}

}  // namespace probkb
