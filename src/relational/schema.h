#ifndef PROBKB_RELATIONAL_SCHEMA_H_
#define PROBKB_RELATIONAL_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"
#include "util/result.h"
#include "util/status.h"

namespace probkb {

/// \brief A named, typed column.
struct Field {
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

/// \brief Ordered list of fields with name lookup. Immutable once built.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);
  Schema(std::initializer_list<Field> fields)
      : Schema(std::vector<Field>(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// \brief Index of the field named `name`, or -1 if absent.
  int GetFieldIndex(const std::string& name) const;

  /// \brief Like GetFieldIndex but returns an error Status when absent.
  Result<int> GetFieldIndexChecked(const std::string& name) const;

  bool Equals(const Schema& other) const;

  /// \brief "(I INT64, R INT64, w FLOAT64)".
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_SCHEMA_H_
