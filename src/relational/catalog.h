#ifndef PROBKB_RELATIONAL_CATALOG_H_
#define PROBKB_RELATIONAL_CATALOG_H_

#include <map>
#include <string>

#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief Frozen, point-in-time view of a catalog: every table is an
/// immutable copy-on-write snapshot handle (Table::Snapshot()). Readers
/// holding one keep seeing exactly the rows that existed when it was
/// taken, no matter how far the writer's tables have advanced since.
class CatalogSnapshot {
 public:
  Result<ConstTablePtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  int64_t NumTables() const { return static_cast<int64_t>(tables_.size()); }

  /// \brief Stable iteration (sorted by name).
  const std::map<std::string, ConstTablePtr>& tables() const {
    return tables_;
  }

 private:
  friend class Catalog;
  std::map<std::string, ConstTablePtr> tables_;
};

/// \brief Named table registry, playing the role of the database catalog.
///
/// Tuffy-T registers one table per relation here (tens of thousands);
/// ProbKB registers a handful (TPi, M1..M6, TOmega, dictionaries).
class Catalog {
 public:
  /// \brief Registers `table` under `name`; fails if the name is taken.
  Status Register(const std::string& name, TablePtr table);

  /// \brief Registers or replaces.
  void Put(const std::string& name, TablePtr table) {
    tables_[name] = std::move(table);
  }

  Result<TablePtr> Get(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  Status Drop(const std::string& name);

  /// \brief Cheap point-in-time copy: snapshots every registered table
  /// (O(tables x width) shared_ptr copies, no row data). Call from the
  /// writer thread; the returned handle is safe to share with readers.
  std::shared_ptr<const CatalogSnapshot> Snapshot() const;

  int64_t NumTables() const { return static_cast<int64_t>(tables_.size()); }

  /// \brief Stable iteration (sorted by name).
  const std::map<std::string, TablePtr>& tables() const { return tables_; }

 private:
  std::map<std::string, TablePtr> tables_;
};

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_CATALOG_H_
