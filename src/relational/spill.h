#ifndef PROBKB_RELATIONAL_SPILL_H_
#define PROBKB_RELATIONAL_SPILL_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "relational/table.h"
#include "util/mem_budget.h"
#include "util/result.h"

namespace probkb {

/// Out-of-core storage tier: columnar Table partitions serialized to disk
/// as checksummed fixed-size pages and paged back on demand, so grounding
/// joins can run on KBs far larger than the memory budget (DESIGN.md
/// "Out-of-core execution"). The page payload is the lossless wire
/// encoding (table_io.h EncodeTableColumnar), so a paged-in partition is
/// byte-identical to the table that was spilled.
///
/// Commit discipline is the checkpoint layer's `.staging`-then-rename
/// pattern: pages stream into `<path>.staging`, and only a completed
/// Commit() fsyncs and renames the file into place. A crash mid-spill
/// leaves only `.staging` debris that SweepSpillDirectory removes at
/// startup — a resumed run can never page in a half-written partition.

/// \brief Cumulative spill-layer counters. Atomics: MPP per-segment
/// fan-out spills into one shared context from several threads.
struct SpillStats {
  std::atomic<int64_t> partitions_spilled{0};
  std::atomic<int64_t> pages_written{0};
  std::atomic<int64_t> bytes_written{0};
  std::atomic<int64_t> bytes_read{0};
  std::atomic<int64_t> page_faults_served{0};
  std::atomic<int64_t> checksum_retries{0};
};

/// \brief Shared configuration and state of one out-of-core session: the
/// spill directory, the page size, the memory budget, the counters, and a
/// unique-name sequence. One SpillContext serves every statement of a
/// grounding run (single-node or per-segment MPP fan-out); all methods
/// are thread-safe.
class SpillContext {
 public:
  /// \brief `budget` not owned; may be nullptr (spilling then only
  /// happens when an operator asks for it explicitly). `page_bytes` is
  /// the flush threshold of one partition page.
  SpillContext(std::string dir, MemoryBudget* budget,
               int64_t page_bytes = 1 << 20);
  ~SpillContext();

  SpillContext(const SpillContext&) = delete;
  SpillContext& operator=(const SpillContext&) = delete;

  const std::string& dir() const { return dir_; }
  int64_t page_bytes() const { return page_bytes_; }
  MemoryBudget* budget() const { return budget_; }
  SpillStats& stats() { return stats_; }

  /// \brief Creates the spill directory (once) and sweeps debris left by
  /// a crashed predecessor. Idempotent; call before the first spill.
  Status Prepare();

  /// \brief Unique spill-file path `<dir>/<label>.<seq>.spill`.
  std::string NextFilePath(const std::string& label);

  /// \brief Registers a committed file for RemoveOwnedFiles cleanup.
  void TrackFile(const std::string& path);

  /// \brief Deletes every spill file this context committed (end-of-run
  /// cleanup; sweep handles files orphaned by a crash).
  void RemoveOwnedFiles();

  /// \brief Test hook: damage the next `n` page reads (one flipped byte
  /// after the checksum was recorded — the kCorruptFrame fault class).
  /// Each damaged read fails its checksum; the reader's one retry then
  /// sees clean bytes unless more tokens remain.
  void set_corrupt_page_reads_for_test(int64_t n) {
    corrupt_reads_.store(n, std::memory_order_relaxed);
  }
  bool TakeCorruptReadToken();

 private:
  std::string dir_;
  MemoryBudget* budget_;
  int64_t page_bytes_;
  SpillStats stats_;
  std::atomic<int64_t> file_seq_{0};
  std::atomic<bool> prepared_{false};
  std::atomic<int64_t> corrupt_reads_{0};
  std::mutex mu_;                          // guards owned_files_
  std::vector<std::string> owned_files_;   // committed paths
};

/// \brief Removes orphaned spill debris (`*.spill` and `*.spill.staging`)
/// from `dir`; returns the number of files removed. Startup calls this
/// before the first spill — committed files from a crashed run are as
/// dead as staging files, since partition metadata lives only in memory.
/// Files with other extensions (checkpoints!) are never touched.
Result<int> SweepSpillDirectory(const std::string& dir);

/// \brief One spill file: a sequence of checksummed pages, each holding
/// the wire encoding of a Table slice. Writes stream into
/// `<path>.staging`; Commit() fsyncs and renames into place. An
/// uncommitted file is removed by the destructor (error paths), or left
/// as debris by SimulateCrashForTest() for the sweep to collect.
class SpillFile {
 public:
  static Result<std::unique_ptr<SpillFile>> Create(SpillContext* ctx,
                                                   const std::string& path);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// \brief Appends `page` (rows [begin, end) of its table) as one page.
  Status AppendPage(const Table& page);

  /// \brief Flushes, fsyncs, and renames `<path>.staging` to `<path>`.
  Status Commit();

  /// \brief Abandons the staging file *without* removing it, as a crash
  /// between write and rename would: the bytes may be fully written, but
  /// the commit rename never happened.
  void SimulateCrashForTest();

  const std::string& path() const { return path_; }
  int64_t pages() const { return pages_; }
  int64_t rows() const { return rows_; }
  int64_t bytes_written() const { return bytes_written_; }
  bool committed() const { return committed_; }

 private:
  SpillFile(SpillContext* ctx, std::string path, std::FILE* file);

  SpillContext* ctx_;
  std::string path_;
  std::FILE* file_ = nullptr;  // open on <path>.staging until Commit
  int64_t pages_ = 0;
  int64_t rows_ = 0;
  int64_t bytes_written_ = 0;
  bool committed_ = false;
  std::string encode_buf_;  // reused per page
};

/// \brief Reads every page of a committed spill file back into one table.
/// Each page's checksum is verified; a mismatch (torn write, bit rot, an
/// injected kCorruptFrame-style fault) is retried once with a fresh read
/// before surfacing kDataLoss. Counts a page fault and the bytes read
/// into `ctx->stats()`.
Result<TablePtr> ReadSpillFile(SpillContext* ctx, const Schema& schema,
                               const std::string& path);

/// \brief Deterministic hash-partition router shared with the in-memory
/// PartitionedRowIndex (engine/flat_hash.h): partition = a log2(parts)-bit
/// group of the 64-bit row-key hash, taken from the top at `bit_offset`.
/// Level-0 routing (bit_offset 0) is bit-for-bit the PartitionedRowIndex
/// routing, which is what makes spilled execution a pure physical rewrite:
/// all rows with equal full hash land in the same partition at every
/// level, so each partition pair joins exactly the chains the monolithic
/// index would have probed (same rows, same order). Recursion passes
/// `bit_offset + bits()` to the next level, consuming the next bit group
/// down.
class PartitionedSpillIndex {
 public:
  PartitionedSpillIndex(int num_parts, int bit_offset)
      : num_parts_(num_parts), bit_offset_(bit_offset) {
    PROBKB_CHECK(num_parts >= 1 && (num_parts & (num_parts - 1)) == 0);
    bits_ = 0;
    while ((1 << bits_) < num_parts) ++bits_;
    PROBKB_CHECK(bit_offset_ + bits_ <= 63);
  }

  int num_parts() const { return num_parts_; }
  int bits() const { return bits_; }
  int bit_offset() const { return bit_offset_; }

  size_t PartOf(size_t hash) const {
    if (bits_ == 0) return 0;
    return (hash << bit_offset_) >> (64 - bits_);
  }

 private:
  int num_parts_;
  int bit_offset_;
  int bits_ = 0;
};

/// \brief A logical table split into hash partitions, each either
/// resident (an in-memory buffer) or spilled (a committed page file).
/// Rows are routed by PartitionedSpillIndex; a partition's buffer flushes
/// to its spill file whenever it grows past one page, so partitions
/// smaller than a page never touch disk. With `with_row_ids` the
/// partition schema carries one extra trailing int64 column recording
/// each row's source index — the grace-hash probe side uses it to merge
/// partition outputs back into exact serial order.
///
/// Not thread-safe: one SpillableTable belongs to one operator execution.
/// The shared SpillContext underneath is thread-safe.
class SpillableTable {
 public:
  SpillableTable(SpillContext* ctx, Schema schema, int num_parts,
                 int bit_offset, std::string label, bool with_row_ids);
  ~SpillableTable();

  SpillableTable(const SpillableTable&) = delete;
  SpillableTable& operator=(const SpillableTable&) = delete;

  const PartitionedSpillIndex& router() const { return router_; }
  int num_parts() const { return router_.num_parts(); }
  const Schema& partition_schema() const { return part_schema_; }

  /// \brief Routes rows [begin, end) of `src` into the partitions;
  /// `hashes[i]` is the row-key hash of row begin+i. Over-page buffers
  /// flush to disk as they fill.
  Status AppendPartitioned(const Table& src, std::span<const size_t> hashes,
                           int64_t begin, int64_t end);

  /// \brief Flushes and commits every partition that spilled. Call after
  /// the last AppendPartitioned, before the first PinPartition.
  Status Finish();

  int64_t PartitionRows(int p) const;
  bool IsSpilled(int p) const;

  /// \brief The partition's rows as one resident table: the buffer
  /// as-is for resident partitions, paged in from disk for spilled ones
  /// (Finish flushed their tails). Pinning charges the memory budget with
  /// the pinned bytes; UnpinPartition releases exactly that charge. At most one
  /// partition should be pinned at a time per join side (the single-slot
  /// page cache the budget is sized for).
  Result<TablePtr> PinPartition(int p);
  void UnpinPartition(int p);

  /// \brief Bytes actually resident: partition buffers plus pinned
  /// page-ins. Spilled, unpinned partitions count zero — they live on
  /// disk, and counting them (the pre-PR Table::ByteSize view of the
  /// world) double-charged the budget and inflated bench RSS accounting.
  int64_t ResidentByteSize() const;

  int64_t total_rows() const { return total_rows_; }

 private:
  struct Partition {
    TablePtr buffer;                   // tail rows not yet flushed
    std::unique_ptr<SpillFile> file;   // nullptr until first flush
    std::string committed_path;        // set by Finish()
    int64_t rows = 0;
    TablePtr pinned;                   // page-in result while pinned
    int64_t pinned_charge = 0;         // bytes charged to the budget
  };

  Status FlushPartition(Partition* part);
  void ChargeDelta(int64_t bytes);

  SpillContext* ctx_;
  Schema part_schema_;
  PartitionedSpillIndex router_;
  std::string label_;
  bool with_row_ids_;
  std::vector<Partition> parts_;
  std::vector<std::vector<int64_t>> scatter_;  // reused per append batch
  int64_t total_rows_ = 0;
  int64_t buffered_charge_ = 0;  // budget bytes charged for buffers
};

}  // namespace probkb

#endif  // PROBKB_RELATIONAL_SPILL_H_
