#ifndef PROBKB_DATAGEN_SYNTHETIC_KB_H_
#define PROBKB_DATAGEN_SYNTHETIC_KB_H_

#include <cstdint>

#include "datagen/ground_truth.h"
#include "kb/knowledge_base.h"
#include "util/random.h"
#include "util/result.h"

namespace probkb {

/// \brief Knobs of the ReVerb-Sherlock-like generator.
///
/// `scale` multiplies the Table 2 base counts (82,768 relations; 30,912
/// rules; 277,216 entities; 407,247 facts). Error-injection rates are
/// calibrated so the Figure 7 experiments reproduce the paper's mixture of
/// violation sources; the defaults leave the precision dynamics of
/// Figure 7(a) in the paper's regime (low precision without quality
/// control, high with).
struct SyntheticKbConfig {
  double scale = 0.02;

  // Table 2 base counts.
  int64_t base_relations = 82768;
  int64_t base_rules = 30912;
  int64_t base_entities = 277216;
  int64_t base_facts = 407247;
  int num_classes = 40;  // not scaled

  // Skew of fact generation (power-law usage, as in web extractions).
  double relation_zipf = 0.7;
  double entity_zipf = 0.8;

  // Error injection.
  double frac_incorrect_rules = 0.40;
  double frac_incorrect_facts = 0.08;
  /// Fraction of fact-mentioned entities that are ambiguous surface names
  /// (two referents merged).
  double frac_ambiguous_entities = 0.08;
  double frac_synonym_entities = 0.01;
  /// Fraction of functional facts that get a general-type duplicate.
  double frac_general_type_facts = 0.02;

  // Constraints (Leibniz learned 10,374 functional relations for ReVerb's
  // 82,768 — about 12.5%).
  double frac_functional_relations = 0.125;
  double frac_pseudo_functional = 0.3;  // of functional, degree > 1

  /// Depth of the latent-world closure defining ground truth.
  int truth_closure_iterations = 8;

  uint64_t seed = 42;

  int64_t NumRelations() const { return Scaled(base_relations, 16); }
  int64_t NumRules() const { return Scaled(base_rules, 12); }
  int64_t NumEntities() const { return Scaled(base_entities, 64); }
  int64_t NumFacts() const { return Scaled(base_facts, 64); }

 private:
  int64_t Scaled(int64_t base, int64_t floor) const {
    int64_t v = static_cast<int64_t>(static_cast<double>(base) * scale);
    return v < floor ? floor : v;
  }
};

/// \brief A generated KB plus the generator's ground truth.
struct SyntheticKb {
  KnowledgeBase kb;
  GroundTruth truth;
};

/// \brief Generates a ReVerb-Sherlock-like probabilistic KB with labeled
/// injected errors (see DESIGN.md for the substitution rationale).
Result<SyntheticKb> GenerateReverbSherlockKb(const SyntheticKbConfig& config);

/// \brief S1 workload (Section 6): extends `kb` with structurally valid
/// random rules ("substituting random heads for existing rules") until it
/// has `target_rules` rules. Requires relation signatures.
Status AddRandomRules(KnowledgeBase* kb, int64_t target_rules, uint64_t seed);

/// \brief S2 workload: adds random signature-consistent facts ("random
/// edges") until the KB has `target_facts` facts.
Status AddRandomFacts(KnowledgeBase* kb, int64_t target_facts, uint64_t seed);

/// \brief Out-of-core workload scaler: like AddRandomFacts but built for
/// 10-100M-fact targets (100x the Table 2 fact count). Same power-law shape
/// — Zipf relation picks (alpha 0.6) over signature-consistent Zipf entity
/// picks (alpha 0.5) — but the duplicate filter is a flat hash set of
/// packed 64-bit keys (relation:20 | x:22 | y:22 bits) instead of a
/// node-based set of tuples, so dedup state stays ~8 bytes/fact and the
/// generator itself fits in memory at targets that force the *consumer* to
/// spill. Requires relation ids < 2^20 and entity ids < 2^22 (the full
/// ReVerb-Sherlock id space fits with ~12x headroom); InvalidArgument
/// otherwise.
Status ScaleKbFacts(KnowledgeBase* kb, int64_t target_facts, uint64_t seed);

}  // namespace probkb

#endif  // PROBKB_DATAGEN_SYNTHETIC_KB_H_
