#include "datagen/ground_truth.h"

#include "grounding/grounder.h"

namespace probkb {

const std::vector<EntityId>& GroundTruth::UnderlyingOf(EntityId e) const {
  static const std::vector<EntityId> kEmpty;
  auto it = underlying.find(e);
  if (it != underlying.end()) return it->second;
  return kEmpty;
}

bool GroundTruth::IsTrue(RelationId r, EntityId x, EntityId y) const {
  auto check = [&](EntityId ux, EntityId uy) {
    return true_closure.count({r, ux, uy}) > 0;
  };
  const auto& xs = UnderlyingOf(x);
  const auto& ys = UnderlyingOf(y);
  if (xs.empty() && ys.empty()) return check(x, y);
  auto xs_or_self = xs.empty() ? std::vector<EntityId>{x} : xs;
  auto ys_or_self = ys.empty() ? std::vector<EntityId>{y} : ys;
  for (EntityId ux : xs_or_self) {
    for (EntityId uy : ys_or_self) {
      if (check(ux, uy)) return true;
    }
  }
  return false;
}

PrecisionReport EvaluateInferred(const Table& t_pi,
                                 const GroundTruth& truth) {
  PrecisionReport report;
  for (int64_t i = 0; i < t_pi.NumRows(); ++i) {
    RowView row = t_pi.row(i);
    if (!row[tpi::kW].is_null()) continue;  // extracted, not inferred
    ++report.inferred;
    if (truth.IsTrue(row[tpi::kR].i64(), row[tpi::kX].i64(),
                     row[tpi::kY].i64())) {
      ++report.correct;
    }
  }
  report.precision = report.inferred == 0
                         ? 1.0
                         : static_cast<double>(report.correct) /
                               static_cast<double>(report.inferred);
  return report;
}

Result<std::set<GroundTruth::FactKey>> ComputeTruthClosure(
    const KnowledgeBase& clean_kb, int max_iterations) {
  RelationalKB rkb = BuildRelationalModel(clean_kb);
  GroundingOptions options;
  options.max_iterations = max_iterations;
  Grounder grounder(&rkb, options);
  PROBKB_RETURN_NOT_OK(grounder.GroundAtoms());
  std::set<GroundTruth::FactKey> out;
  for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
    RowView row = rkb.t_pi->row(i);
    out.emplace(row[tpi::kR].i64(), row[tpi::kX].i64(), row[tpi::kY].i64());
  }
  return out;
}

}  // namespace probkb
