#ifndef PROBKB_DATAGEN_GROUND_TRUTH_H_
#define PROBKB_DATAGEN_GROUND_TRUTH_H_

#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.h"
#include "kb/relational_model.h"
#include "quality/error_analysis.h"
#include "util/result.h"

namespace probkb {

/// \brief The generator's knowledge of what is actually true.
///
/// The paper estimates precision with human judges over samples; the
/// synthetic generator instead constructs a latent "true world" — base
/// true facts closed under the sound rules — and records how surface
/// entities map to underlying ones (ambiguous names cover two referents,
/// synonyms share one). An inferred fact is correct iff some combination
/// of underlying referents makes it true in the closure.
struct GroundTruth {
  using FactKey = std::tuple<RelationId, EntityId, EntityId>;

  ErrorLabels labels;

  /// Surface entity -> underlying entities. Absent means identity.
  std::unordered_map<EntityId, std::vector<EntityId>> underlying;

  /// (R, x, y) triples true in the latent world (closure of true base
  /// facts under the sound rules).
  std::set<FactKey> true_closure;

  /// Indices (into the generated KB's rule vector) of unsound rules.
  std::set<size_t> incorrect_rule_indices;

  const std::vector<EntityId>& UnderlyingOf(EntityId e) const;

  /// \brief True iff the (surface-level) fact is correct.
  bool IsTrue(RelationId r, EntityId x, EntityId y) const;
};

/// \brief Precision of the inferred (NULL-weight) facts in a TPi table.
struct PrecisionReport {
  int64_t inferred = 0;
  int64_t correct = 0;
  double precision = 0.0;  // correct / inferred (1.0 when none inferred)
};

PrecisionReport EvaluateInferred(const Table& t_pi, const GroundTruth& truth);

/// \brief Computes the true closure: grounds the clean world (true base
/// facts under the sound rules, `max_iterations` deep) and returns the
/// atom set. Used by the generator; exposed for tests.
Result<std::set<GroundTruth::FactKey>> ComputeTruthClosure(
    const KnowledgeBase& clean_kb, int max_iterations);

}  // namespace probkb

#endif  // PROBKB_DATAGEN_GROUND_TRUTH_H_
