#include "datagen/synthetic_kb.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"
#include "util/strings.h"

namespace probkb {

namespace {

struct PairHash {
  size_t operator()(const std::pair<int64_t, int64_t>& p) const {
    uint64_t h = static_cast<uint64_t>(p.first) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(p.second) + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// Signature indexes used by rule and fact generation.
struct SignatureIndex {
  std::vector<RelationSignature> sigs;  // by relation id (gaps allowed)
  std::map<std::pair<ClassId, ClassId>, std::vector<RelationId>> by_pair;
  std::map<ClassId, std::vector<RelationId>> by_domain;
  std::map<ClassId, std::vector<RelationId>> by_range;
  std::vector<RelationId> all;

  void Add(const RelationSignature& sig) {
    if (static_cast<size_t>(sig.relation) >= sigs.size()) {
      sigs.resize(static_cast<size_t>(sig.relation) + 1);
    }
    sigs[static_cast<size_t>(sig.relation)] = sig;
    by_pair[{sig.domain, sig.range}].push_back(sig.relation);
    by_domain[sig.domain].push_back(sig.relation);
    by_range[sig.range].push_back(sig.relation);
    all.push_back(sig.relation);
  }

  const RelationSignature& Of(RelationId r) const {
    return sigs[static_cast<size_t>(r)];
  }
};

/// Entity pools per class.
struct EntityIndex {
  std::vector<ClassId> entity_class;  // by entity id
  std::map<ClassId, std::vector<EntityId>> by_class;

  void Add(EntityId e, ClassId c) {
    if (static_cast<size_t>(e) >= entity_class.size()) {
      entity_class.resize(static_cast<size_t>(e) + 1, kInvalidId);
    }
    entity_class[static_cast<size_t>(e)] = c;
    by_class[c].push_back(e);
  }

  ClassId ClassOf(EntityId e) const {
    return entity_class[static_cast<size_t>(e)];
  }
};

template <typename T>
const T* PickFrom(const std::vector<T>& v, Rng* rng) {
  if (v.empty()) return nullptr;
  return &v[rng->Uniform(v.size())];
}

RuleStructure SampleStructure(Rng* rng) {
  // Sherlock-like mix: length-3 chains dominate.
  double u = rng->UniformDouble();
  if (u < 0.12) return RuleStructure::kM1;
  if (u < 0.20) return RuleStructure::kM2;
  if (u < 0.50) return RuleStructure::kM3;
  if (u < 0.70) return RuleStructure::kM4;
  if (u < 0.88) return RuleStructure::kM5;
  return RuleStructure::kM6;
}

using RuleKey =
    std::tuple<int, RelationId, RelationId, RelationId, ClassId, ClassId,
               ClassId>;
RuleKey KeyOf(const HornRule& r) {
  return {static_cast<int>(r.structure), r.head, r.body1, r.body2,
          r.c1,  r.c2,  r.c3};
}

/// Attempts one structurally valid typed rule; body relations drawn with
/// `body_zipf` skew so rules tend to cover fact-heavy relations.
std::optional<HornRule> TryMakeRule(const SignatureIndex& index, Rng* rng,
                                    double body_zipf) {
  if (index.all.empty()) return std::nullopt;
  HornRule rule;
  rule.structure = SampleStructure(rng);
  RelationId q =
      index.all[rng->Zipf(index.all.size(), body_zipf)];
  const RelationSignature& qs = index.Of(q);
  rule.body1 = q;

  auto head_from = [&](ClassId c1, ClassId c2) -> bool {
    auto it = index.by_pair.find({c1, c2});
    if (it == index.by_pair.end()) return false;
    const RelationId* p = PickFrom(it->second, rng);
    if (p == nullptr || *p == q) return false;
    rule.head = *p;
    rule.c1 = c1;
    rule.c2 = c2;
    return true;
  };

  switch (rule.structure) {
    case RuleStructure::kM1:  // q(x, y)
      if (!head_from(qs.domain, qs.range)) return std::nullopt;
      return rule;
    case RuleStructure::kM2:  // q(y, x)
      if (!head_from(qs.range, qs.domain)) return std::nullopt;
      return rule;
    case RuleStructure::kM3: {  // q(z,x), r(z,y)
      ClassId c3 = qs.domain, c1 = qs.range;
      auto it = index.by_domain.find(c3);
      if (it == index.by_domain.end()) return std::nullopt;
      const RelationId* r = PickFrom(it->second, rng);
      if (r == nullptr) return std::nullopt;
      rule.body2 = *r;
      rule.c3 = c3;
      if (!head_from(c1, index.Of(*r).range)) return std::nullopt;
      return rule;
    }
    case RuleStructure::kM4: {  // q(x,z), r(z,y)
      ClassId c1 = qs.domain, c3 = qs.range;
      auto it = index.by_domain.find(c3);
      if (it == index.by_domain.end()) return std::nullopt;
      const RelationId* r = PickFrom(it->second, rng);
      if (r == nullptr) return std::nullopt;
      rule.body2 = *r;
      rule.c3 = c3;
      if (!head_from(c1, index.Of(*r).range)) return std::nullopt;
      return rule;
    }
    case RuleStructure::kM5: {  // q(z,x), r(y,z)
      ClassId c3 = qs.domain, c1 = qs.range;
      auto it = index.by_range.find(c3);
      if (it == index.by_range.end()) return std::nullopt;
      const RelationId* r = PickFrom(it->second, rng);
      if (r == nullptr) return std::nullopt;
      rule.body2 = *r;
      rule.c3 = c3;
      if (!head_from(c1, index.Of(*r).domain)) return std::nullopt;
      return rule;
    }
    case RuleStructure::kM6: {  // q(x,z), r(y,z)
      ClassId c1 = qs.domain, c3 = qs.range;
      auto it = index.by_range.find(c3);
      if (it == index.by_range.end()) return std::nullopt;
      const RelationId* r = PickFrom(it->second, rng);
      if (r == nullptr) return std::nullopt;
      rule.body2 = *r;
      rule.c3 = c3;
      if (!head_from(c1, index.Of(*r).domain)) return std::nullopt;
      return rule;
    }
  }
  return std::nullopt;
}

}  // namespace

Result<SyntheticKb> GenerateReverbSherlockKb(const SyntheticKbConfig& cfg) {
  if (cfg.scale <= 0) {
    return Status::InvalidArgument("scale must be positive");
  }
  SyntheticKb out;
  KnowledgeBase& kb = out.kb;
  GroundTruth& truth = out.truth;
  Rng rng(cfg.seed);

  const int64_t num_relations = cfg.NumRelations();
  const int64_t num_rules = cfg.NumRules();
  const int64_t num_entities = cfg.NumEntities();
  const int64_t num_facts = cfg.NumFacts();
  const int num_classes = cfg.num_classes;

  // --- Symbols -------------------------------------------------------------
  for (int c = 0; c < num_classes; ++c) {
    kb.classes().GetOrAdd(StrFormat("Class_%d", c));
  }
  EntityIndex entities;
  for (int64_t e = 0; e < num_entities; ++e) {
    EntityId id = kb.entities().GetOrAdd(StrFormat("e%lld",
                                                   static_cast<long long>(e)));
    ClassId c = static_cast<ClassId>(
        rng.Zipf(static_cast<uint64_t>(num_classes), 0.8));
    entities.Add(id, c);
    kb.AddClassMember({c, id});
  }

  SignatureIndex sig_index;
  // Per-relation functional metadata: 0 = not functional, else the degree;
  // indexed [relation][type-1].
  std::vector<std::array<int64_t, 2>> functional(
      static_cast<size_t>(num_relations), {0, 0});
  for (int64_t r = 0; r < num_relations; ++r) {
    RelationId id = kb.relations().GetOrAdd(
        StrFormat("r%lld", static_cast<long long>(r)));
    RelationSignature sig;
    sig.relation = id;
    sig.domain = static_cast<ClassId>(
        rng.Zipf(static_cast<uint64_t>(num_classes), 0.8));
    sig.range = static_cast<ClassId>(
        rng.Zipf(static_cast<uint64_t>(num_classes), 0.8));
    kb.AddSignature(sig);
    sig_index.Add(sig);
    if (rng.Bernoulli(cfg.frac_functional_relations)) {
      FunctionalConstraint c;
      c.relation = id;
      c.type = rng.Bernoulli(0.8) ? FunctionalityType::kTypeI
                                  : FunctionalityType::kTypeII;
      c.degree = rng.Bernoulli(cfg.frac_pseudo_functional)
                     ? rng.UniformInt(2, 4)
                     : 1;
      kb.AddConstraint(c);
      functional[static_cast<size_t>(id)][static_cast<int>(c.type) - 1] =
          c.degree;
    }
  }

  // --- Rules ---------------------------------------------------------------
  std::set<RuleKey> seen_rules;
  std::vector<HornRule> correct_rules;
  std::vector<HornRule> bad_rules;
  // Reserved bad-rule heads: relations only unsound rules conclude, so the
  // error classifier can attribute E2 precisely. Created on demand per
  // class pair.
  std::map<std::pair<ClassId, ClassId>, RelationId> reserved_heads;
  const int64_t n_bad =
      static_cast<int64_t>(cfg.frac_incorrect_rules * num_rules);
  const int64_t n_correct = num_rules - n_bad;

  // Sound rules must not conclude functional relations: the latent world
  // satisfies its constraints, so a functional fact can only have one
  // filler — a sound rule deriving extra fillers would contradict the
  // world. (Unsound rules are allowed to, which is how Query 3 catches
  // them.)
  auto is_functional_head = [&functional](RelationId r) {
    return functional[static_cast<size_t>(r)][0] > 0 ||
           functional[static_cast<size_t>(r)][1] > 0;
  };
  int64_t attempts = num_rules * 200;
  while (static_cast<int64_t>(correct_rules.size()) < n_correct &&
         attempts-- > 0) {
    auto rule = TryMakeRule(sig_index, &rng, cfg.relation_zipf);
    if (!rule.has_value()) continue;
    if (is_functional_head(rule->head)) continue;
    rule->weight = std::abs(rng.Normal(1.5, 0.8)) + 0.2;
    rule->score = std::clamp(rng.Normal(0.68, 0.18), 0.0, 1.0);
    if (!seen_rules.insert(KeyOf(*rule)).second) continue;
    correct_rules.push_back(*rule);
  }
  attempts = num_rules * 200;
  while (static_cast<int64_t>(bad_rules.size()) < n_bad && attempts-- > 0) {
    auto rule = TryMakeRule(sig_index, &rng, 1.1);
    if (!rule.has_value()) continue;
    rule->weight = std::abs(rng.Normal(0.8, 0.5)) + 0.1;
    rule->score = std::clamp(rng.Normal(0.38, 0.18), 0.0, 1.0);
    if (rng.Bernoulli(0.3)) {
      // Route the conclusion into a reserved head relation.
      auto key = std::make_pair(rule->c1, rule->c2);
      auto it = reserved_heads.find(key);
      if (it == reserved_heads.end()) {
        RelationId id = kb.relations().GetOrAdd(StrFormat(
            "bad_r%zu", reserved_heads.size()));
        RelationSignature sig{id, rule->c1, rule->c2};
        kb.AddSignature(sig);
        // Deliberately NOT added to sig_index: correct rules and base
        // facts never use reserved heads.
        functional.resize(static_cast<size_t>(kb.relations().size()),
                          {0, 0});
        it = reserved_heads.emplace(key, id).first;
        truth.labels.bad_rule_heads.insert(id);
      }
      rule->head = it->second;
    }
    if (!seen_rules.insert(KeyOf(*rule)).second) continue;
    truth.labels.bad_rule_signatures.insert(
        {rule->head, rule->body1, rule->body2});
    bad_rules.push_back(*rule);
  }

  for (const HornRule& r : correct_rules) kb.AddRule(r);

  // --- Base true facts ------------------------------------------------------
  std::unordered_map<std::pair<int64_t, int64_t>, int64_t, PairHash>
      type1_count, type2_count;
  std::unordered_set<std::pair<int64_t, int64_t>, PairHash> fact_xy_seen;
  auto fact_key = [](RelationId r, EntityId x, EntityId y) {
    // Pack (r, x, y) into a pair for dedup: r in the high bits of first.
    return std::make_pair((r << 24) ^ x, y);
  };

  const int64_t n_bad_facts =
      static_cast<int64_t>(cfg.frac_incorrect_facts * num_facts);
  const int64_t n_true = num_facts - n_bad_facts;
  int64_t made = 0;
  attempts = num_facts * 50;
  while (made < n_true && attempts-- > 0) {
    RelationId r = sig_index.all[rng.Zipf(sig_index.all.size(),
                                          cfg.relation_zipf)];
    const RelationSignature& sig = sig_index.Of(r);
    const auto& xs = entities.by_class[sig.domain];
    const auto& ys = entities.by_class[sig.range];
    if (xs.empty() || ys.empty()) continue;
    EntityId x = xs[rng.Zipf(xs.size(), cfg.entity_zipf)];
    EntityId y = ys[rng.Zipf(ys.size(), cfg.entity_zipf)];
    int64_t deg1 = functional[static_cast<size_t>(r)][0];
    int64_t deg2 = functional[static_cast<size_t>(r)][1];
    if (deg1 > 0 && type1_count[{r, x}] >= deg1) continue;
    if (deg2 > 0 && type2_count[{r, y}] >= deg2) continue;
    if (!fact_xy_seen.insert(fact_key(r, x, y)).second) continue;
    if (deg1 > 0) ++type1_count[{r, x}];
    if (deg2 > 0) ++type2_count[{r, y}];
    kb.AddFact({r, x, entities.ClassOf(x), y, entities.ClassOf(y),
                rng.UniformDouble(0.5, 1.0)});
    ++made;
  }

  // --- Latent-world closure (defines correctness) ---------------------------
  {
    KnowledgeBase clean = kb;  // correct rules + true facts only
    PROBKB_ASSIGN_OR_RETURN(
        truth.true_closure,
        ComputeTruthClosure(clean, cfg.truth_closure_iterations));
  }

  // Unsound rules join the program only after the closure is fixed.
  for (const HornRule& r : bad_rules) {
    truth.incorrect_rule_indices.insert(kb.rules().size());
    kb.AddRule(r);
  }

  // --- Incorrect extractions ------------------------------------------------
  // Indices of injected-error facts; the (R, x, y) label keys are
  // materialized only after entity merging rewrites the surface ids.
  std::vector<size_t> bad_fact_indices;
  made = 0;
  attempts = num_facts * 50;
  while (made < n_bad_facts && attempts-- > 0) {
    RelationId r = sig_index.all[rng.Zipf(sig_index.all.size(),
                                          cfg.relation_zipf)];
    const RelationSignature& sig = sig_index.Of(r);
    const auto& xs = entities.by_class[sig.domain];
    const auto& ys = entities.by_class[sig.range];
    if (xs.empty() || ys.empty()) continue;
    EntityId x = xs[rng.Uniform(xs.size())];
    EntityId y = ys[rng.Uniform(ys.size())];
    if (truth.true_closure.count({r, x, y}) > 0) continue;
    if (!fact_xy_seen.insert(fact_key(r, x, y)).second) continue;
    bad_fact_indices.push_back(kb.facts().size());
    kb.AddFact({r, x, entities.ClassOf(x), y, entities.ClassOf(y),
                rng.UniformDouble(0.2, 0.9)});
    ++made;
  }

  // --- Ambiguous entities (merge two referents under one surface name) ------
  std::vector<Fact>& facts = *kb.mutable_facts();
  {
    // Usage-weighted pool of mentioned entities.
    std::vector<EntityId> usage;
    std::unordered_set<EntityId> used;
    for (const Fact& f : facts) {
      usage.push_back(f.x);
      usage.push_back(f.y);
      used.insert(f.x);
      used.insert(f.y);
    }
    const int64_t n_pairs = static_cast<int64_t>(
        cfg.frac_ambiguous_entities * static_cast<double>(used.size()));
    std::unordered_set<EntityId> taken;
    std::unordered_map<EntityId, EntityId> remap;
    int64_t pair_attempts = n_pairs * 200 + 200;
    int64_t pairs_made = 0;
    while (pairs_made < n_pairs && pair_attempts-- > 0) {
      EntityId keep = usage[rng.Uniform(usage.size())];
      EntityId merge = usage[rng.Uniform(usage.size())];
      if (keep == merge || taken.count(keep) || taken.count(merge)) continue;
      if (entities.ClassOf(keep) != entities.ClassOf(merge)) continue;
      taken.insert(keep);
      taken.insert(merge);
      remap[merge] = keep;
      truth.underlying[keep] = {keep, merge};
      truth.labels.ambiguous_entities.insert(keep);
      ++pairs_made;
    }
    for (Fact& f : facts) {
      auto itx = remap.find(f.x);
      if (itx != remap.end()) f.x = itx->second;
      auto ity = remap.find(f.y);
      if (ity != remap.end()) f.y = ity->second;
    }
  }

  // --- Synonyms (one referent, two surface names) ----------------------------
  {
    std::unordered_set<EntityId> used;
    for (const Fact& f : facts) {
      used.insert(f.x);
      used.insert(f.y);
    }
    std::vector<EntityId> pool(used.begin(), used.end());
    std::sort(pool.begin(), pool.end());
    const int64_t n_syn = static_cast<int64_t>(
        cfg.frac_synonym_entities * static_cast<double>(pool.size()));
    for (int64_t i = 0; i < n_syn && !pool.empty(); ++i) {
      EntityId e = pool[rng.Uniform(pool.size())];
      if (truth.labels.ambiguous_entities.count(e) > 0 ||
          truth.underlying.count(e) > 0) {
        continue;
      }
      EntityId e_syn = kb.entities().GetOrAdd(
          kb.entities().NameOrPlaceholder(e) + "_syn");
      entities.Add(e_syn, entities.ClassOf(e));
      kb.AddClassMember({entities.ClassOf(e), e_syn});
      truth.underlying[e_syn] = {e};
      truth.labels.synonym_entities.insert(e_syn);
      for (Fact& f : facts) {
        if (f.x == e && rng.Bernoulli(0.5)) f.x = e_syn;
        if (f.y == e && rng.Bernoulli(0.5)) f.y = e_syn;
      }
    }
  }

  // --- General-type duplicates ------------------------------------------------
  {
    std::map<ClassId, EntityId> general_of_class;
    size_t original_count = facts.size();
    for (size_t i = 0; i < original_count; ++i) {
      Fact f = facts[i];
      if (functional[static_cast<size_t>(f.relation)][0] == 0) continue;
      if (!rng.Bernoulli(cfg.frac_general_type_facts)) continue;
      auto it = general_of_class.find(f.c2);
      if (it == general_of_class.end()) {
        EntityId g = kb.entities().GetOrAdd(
            StrFormat("general_%s",
                      kb.classes().NameOrPlaceholder(f.c2).c_str()));
        entities.Add(g, f.c2);
        kb.AddClassMember({f.c2, g});
        truth.labels.general_type_entities.insert(g);
        it = general_of_class.emplace(f.c2, g).first;
      }
      EntityId g = it->second;
      if (f.y == g) continue;
      Fact dup = f;
      dup.y = g;
      dup.weight = rng.UniformDouble(0.4, 0.9);
      facts.push_back(dup);
      // The general statement is true (just unspecific).
      for (EntityId ux : truth.UnderlyingOf(f.x).empty()
                             ? std::vector<EntityId>{f.x}
                             : truth.UnderlyingOf(f.x)) {
        truth.true_closure.insert({f.relation, ux, g});
      }
    }
  }

  // Materialize incorrect-extraction labels from the *final* surface ids
  // (ambiguity merging and synonym splitting rewrote x/y above).
  for (size_t idx : bad_fact_indices) {
    const Fact& f = facts[idx];
    truth.labels.incorrect_extractions.insert({f.relation, f.x, f.y});
  }

  // --- Final dedupe (merging may have created duplicates) --------------------
  {
    std::set<std::tuple<RelationId, EntityId, ClassId, EntityId, ClassId>>
        seen;
    std::vector<Fact> deduped;
    deduped.reserve(facts.size());
    for (const Fact& f : facts) {
      if (seen.emplace(f.relation, f.x, f.c1, f.y, f.c2).second) {
        deduped.push_back(f);
      }
    }
    facts = std::move(deduped);
  }

  PROBKB_RETURN_NOT_OK(kb.Validate());
  return out;
}

namespace {

/// Rebuilds generation indexes from an existing KB (for S1/S2 extension).
void BuildIndexes(const KnowledgeBase& kb, SignatureIndex* sigs,
                  EntityIndex* entities) {
  for (const RelationSignature& s : kb.signatures()) sigs->Add(s);
  for (const ClassMember& m : kb.class_members()) {
    entities->Add(m.entity, m.cls);
  }
}

}  // namespace

Status AddRandomRules(KnowledgeBase* kb, int64_t target_rules,
                      uint64_t seed) {
  if (kb->signatures().empty()) {
    return Status::InvalidArgument(
        "AddRandomRules requires relation signatures");
  }
  Rng rng(seed);
  SignatureIndex sigs;
  EntityIndex entities;
  BuildIndexes(*kb, &sigs, &entities);
  std::set<RuleKey> seen;
  for (const HornRule& r : kb->rules()) seen.insert(KeyOf(r));

  int64_t attempts =
      (target_rules - static_cast<int64_t>(kb->rules().size())) * 500 + 1000;
  while (static_cast<int64_t>(kb->rules().size()) < target_rules &&
         attempts-- > 0) {
    auto rule = TryMakeRule(sigs, &rng, 0.6);
    if (!rule.has_value()) continue;
    if (!seen.insert(KeyOf(*rule)).second) continue;
    rule->weight = std::abs(rng.Normal(1.0, 0.6)) + 0.1;
    rule->score = rng.UniformDouble();
    kb->AddRule(*rule);
  }
  if (static_cast<int64_t>(kb->rules().size()) < target_rules) {
    return Status::Internal(
        StrFormat("could only generate %zu of %lld rules",
                  kb->rules().size(),
                  static_cast<long long>(target_rules)));
  }
  return Status::OK();
}

Status AddRandomFacts(KnowledgeBase* kb, int64_t target_facts,
                      uint64_t seed) {
  if (kb->signatures().empty()) {
    return Status::InvalidArgument(
        "AddRandomFacts requires relation signatures");
  }
  Rng rng(seed);
  SignatureIndex sigs;
  EntityIndex entities;
  BuildIndexes(*kb, &sigs, &entities);
  std::set<std::tuple<RelationId, EntityId, EntityId>> seen;
  for (const Fact& f : kb->facts()) seen.emplace(f.relation, f.x, f.y);

  int64_t attempts =
      (target_facts - static_cast<int64_t>(kb->facts().size())) * 50 + 1000;
  while (static_cast<int64_t>(kb->facts().size()) < target_facts &&
         attempts-- > 0) {
    RelationId r = sigs.all[rng.Zipf(sigs.all.size(), 0.6)];
    const RelationSignature& sig = sigs.Of(r);
    auto itx = entities.by_class.find(sig.domain);
    auto ity = entities.by_class.find(sig.range);
    if (itx == entities.by_class.end() || ity == entities.by_class.end()) {
      continue;
    }
    EntityId x = itx->second[rng.Zipf(itx->second.size(), 0.5)];
    EntityId y = ity->second[rng.Zipf(ity->second.size(), 0.5)];
    if (!seen.emplace(r, x, y).second) continue;
    kb->AddFact({r, x, entities.ClassOf(x), y, entities.ClassOf(y),
                 rng.UniformDouble(0.5, 1.0)});
  }
  if (static_cast<int64_t>(kb->facts().size()) < target_facts) {
    return Status::Internal(
        StrFormat("could only generate %zu of %lld facts",
                  kb->facts().size(),
                  static_cast<long long>(target_facts)));
  }
  return Status::OK();
}

namespace {

// Packed dedup key for ScaleKbFacts: relation:20 | x:22 | y:22.
constexpr int64_t kScaleMaxRelationId = int64_t{1} << 20;
constexpr int64_t kScaleMaxEntityId = int64_t{1} << 22;

uint64_t PackFactKey(RelationId r, EntityId x, EntityId y) {
  return (static_cast<uint64_t>(r) << 44) | (static_cast<uint64_t>(x) << 22) |
         static_cast<uint64_t>(y);
}

}  // namespace

Status ScaleKbFacts(KnowledgeBase* kb, int64_t target_facts, uint64_t seed) {
  if (kb->signatures().empty()) {
    return Status::InvalidArgument("ScaleKbFacts requires relation signatures");
  }
  SignatureIndex sigs;
  EntityIndex entities;
  BuildIndexes(*kb, &sigs, &entities);
  for (const RelationId r : sigs.all) {
    if (r < 0 || r >= kScaleMaxRelationId) {
      return Status::InvalidArgument(
          StrFormat("ScaleKbFacts: relation id %lld exceeds the 20-bit "
                    "packed-key space",
                    static_cast<long long>(r)));
    }
  }
  if (static_cast<int64_t>(entities.entity_class.size()) > kScaleMaxEntityId) {
    return Status::InvalidArgument(
        StrFormat("ScaleKbFacts: entity id space %zu exceeds the 22-bit "
                  "packed-key space",
                  entities.entity_class.size()));
  }

  Rng rng(seed);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(std::max<int64_t>(target_facts, 1)));
  for (const Fact& f : kb->facts()) {
    seen.insert(PackFactKey(f.relation, f.x, f.y));
  }

  int64_t attempts =
      (target_facts - static_cast<int64_t>(kb->facts().size())) * 50 + 1000;
  while (static_cast<int64_t>(kb->facts().size()) < target_facts &&
         attempts-- > 0) {
    RelationId r = sigs.all[rng.Zipf(sigs.all.size(), 0.6)];
    const RelationSignature& sig = sigs.Of(r);
    auto itx = entities.by_class.find(sig.domain);
    auto ity = entities.by_class.find(sig.range);
    if (itx == entities.by_class.end() || ity == entities.by_class.end()) {
      continue;
    }
    EntityId x = itx->second[rng.Zipf(itx->second.size(), 0.5)];
    EntityId y = ity->second[rng.Zipf(ity->second.size(), 0.5)];
    if (!seen.insert(PackFactKey(r, x, y)).second) continue;
    kb->AddFact({r, x, entities.ClassOf(x), y, entities.ClassOf(y),
                 rng.UniformDouble(0.5, 1.0)});
  }
  if (static_cast<int64_t>(kb->facts().size()) < target_facts) {
    return Status::Internal(
        StrFormat("ScaleKbFacts could only generate %zu of %lld facts "
                  "(entity x relation space too small for the target)",
                  kb->facts().size(), static_cast<long long>(target_facts)));
  }
  return Status::OK();
}

}  // namespace probkb
