#ifndef PROBKB_FACTOR_FACTOR_GRAPH_H_
#define PROBKB_FACTOR_FACTOR_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "kb/relational_model.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief One ground factor: a weighted ground Horn clause
/// head <- body1 [, body2], or a singleton (head only) for an extracted
/// fact's prior weight.
///
/// Semantics (Section 2.2): the factor's value is 1 when the ground clause
/// is violated (all body atoms true, head false) and e^w otherwise; a
/// singleton factor is e^w when the atom is true and 1 otherwise.
struct GroundFactor {
  int32_t head = -1;
  int32_t body1 = -1;  // -1 if absent
  int32_t body2 = -1;  // -1 if absent
  double weight = 0.0;

  int size() const { return 1 + (body1 >= 0 ? 1 : 0) + (body2 >= 0 ? 1 : 0); }

  /// \brief log of the factor value under `assignment` (indexed by
  /// variable): w if the clause is satisfied, 0 otherwise.
  double LogValue(const std::vector<uint8_t>& assignment) const {
    if (body1 < 0) {  // singleton: formula is the atom itself
      return assignment[static_cast<size_t>(head)] ? weight : 0.0;
    }
    bool body_true = assignment[static_cast<size_t>(body1)] &&
                     (body2 < 0 || assignment[static_cast<size_t>(body2)]);
    bool violated = body_true && !assignment[static_cast<size_t>(head)];
    return violated ? 0.0 : weight;
  }
};

/// \brief The ground factor graph produced by grounding (Definition 7),
/// with variable adjacency for inference and lineage queries.
class FactorGraph {
 public:
  /// \brief Builds a graph from the relational outputs: variables are the
  /// distinct fact ids of `t_pi` (compactly renumbered); factors come from
  /// `t_phi` rows (I1, I2, I3, w).
  static Result<FactorGraph> FromTables(const Table& t_pi,
                                        const Table& t_phi);

  int num_variables() const { return static_cast<int>(fact_ids_.size()); }
  int64_t num_factors() const {
    return static_cast<int64_t>(factors_.size());
  }

  const std::vector<GroundFactor>& factors() const { return factors_; }

  /// \brief Factors incident to variable `v`.
  const std::vector<int32_t>& FactorsOf(int32_t v) const {
    return var_factors_[static_cast<size_t>(v)];
  }

  /// \brief The original TPi fact id of variable `v`.
  FactId fact_id(int32_t v) const {
    return fact_ids_[static_cast<size_t>(v)];
  }
  /// \brief Maps a TPi fact id back to its variable index (-1 if unknown).
  int32_t VariableOf(FactId id) const;

  /// \brief Unnormalized log-probability of an assignment: sum of
  /// satisfied-clause weights, Eq. (4).
  double LogScore(const std::vector<uint8_t>& assignment) const;

  /// \brief Greedy coloring of the variable-interaction graph (variables
  /// sharing a factor receive different colors). Returns color per
  /// variable; same-color variables are conditionally independent, which
  /// the chromatic Gibbs schedule exploits.
  std::vector<int> ColorVariables() const;

  /// \brief Factors whose head is `v` and that have a body — i.e. the
  /// derivations of v. The factor table "contains the entire lineage and
  /// can be queried" (Section 4.2.3).
  std::vector<int32_t> DerivationsOf(int32_t v) const;

  /// \brief Pretty-printed derivation tree of variable `v` down to
  /// `max_depth`, with atom names resolved by `describe(fact_id)`.
  std::string ExplainLineage(
      int32_t v, int max_depth,
      const std::function<std::string(FactId)>& describe) const;

 private:
  std::vector<FactId> fact_ids_;
  std::unordered_map<FactId, int32_t> var_of_;
  std::vector<GroundFactor> factors_;
  std::vector<std::vector<int32_t>> var_factors_;
};

}  // namespace probkb

#endif  // PROBKB_FACTOR_FACTOR_GRAPH_H_
