#include "factor/factor_graph.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "util/strings.h"

namespace probkb {

Result<FactorGraph> FactorGraph::FromTables(const Table& t_pi,
                                            const Table& t_phi) {
  FactorGraph g;
  g.fact_ids_.reserve(static_cast<size_t>(t_pi.NumRows()));
  for (int64_t i = 0; i < t_pi.NumRows(); ++i) {
    FactId id = t_pi.row(i)[tpi::kI].i64();
    auto [it, inserted] =
        g.var_of_.emplace(id, static_cast<int32_t>(g.fact_ids_.size()));
    (void)it;
    if (!inserted) {
      return Status::InvalidArgument(
          StrFormat("duplicate fact id %lld in TPi",
                    static_cast<long long>(id)));
    }
    g.fact_ids_.push_back(id);
  }

  auto var = [&g](const Value& v) -> Result<int32_t> {
    auto it = g.var_of_.find(v.i64());
    if (it == g.var_of_.end()) {
      return Status::InvalidArgument(
          StrFormat("factor references unknown fact id %lld",
                    static_cast<long long>(v.i64())));
    }
    return it->second;
  };

  g.factors_.reserve(static_cast<size_t>(t_phi.NumRows()));
  g.var_factors_.resize(g.fact_ids_.size());
  for (int64_t i = 0; i < t_phi.NumRows(); ++i) {
    RowView row = t_phi.row(i);
    GroundFactor f;
    PROBKB_ASSIGN_OR_RETURN(f.head, var(row[tphi::kI1]));
    if (!row[tphi::kI2].is_null()) {
      PROBKB_ASSIGN_OR_RETURN(f.body1, var(row[tphi::kI2]));
    }
    if (!row[tphi::kI3].is_null()) {
      PROBKB_ASSIGN_OR_RETURN(f.body2, var(row[tphi::kI3]));
    }
    if (f.body1 < 0 && f.body2 >= 0) {
      return Status::InvalidArgument("factor has I3 but not I2");
    }
    f.weight = row[tphi::kW].is_null() ? 0.0 : row[tphi::kW].f64();
    int32_t idx = static_cast<int32_t>(g.factors_.size());
    for (int32_t v : {f.head, f.body1, f.body2}) {
      if (v >= 0) g.var_factors_[static_cast<size_t>(v)].push_back(idx);
    }
    g.factors_.push_back(f);
  }
  return g;
}

int32_t FactorGraph::VariableOf(FactId id) const {
  auto it = var_of_.find(id);
  return it == var_of_.end() ? -1 : it->second;
}

double FactorGraph::LogScore(const std::vector<uint8_t>& assignment) const {
  double score = 0.0;
  for (const GroundFactor& f : factors_) score += f.LogValue(assignment);
  return score;
}

std::vector<int> FactorGraph::ColorVariables() const {
  const int n = num_variables();
  std::vector<int> color(static_cast<size_t>(n), -1);
  std::vector<int> used;  // scratch: colors used by neighbours
  for (int32_t v = 0; v < n; ++v) {
    used.clear();
    for (int32_t fi : var_factors_[static_cast<size_t>(v)]) {
      const GroundFactor& f = factors_[static_cast<size_t>(fi)];
      for (int32_t u : {f.head, f.body1, f.body2}) {
        if (u >= 0 && u != v && color[static_cast<size_t>(u)] >= 0) {
          used.push_back(color[static_cast<size_t>(u)]);
        }
      }
    }
    std::sort(used.begin(), used.end());
    int c = 0;
    for (int uc : used) {
      if (uc == c) {
        ++c;
      } else if (uc > c) {
        break;
      }
    }
    color[static_cast<size_t>(v)] = c;
  }
  return color;
}

std::vector<int32_t> FactorGraph::DerivationsOf(int32_t v) const {
  std::vector<int32_t> out;
  for (int32_t fi : var_factors_[static_cast<size_t>(v)]) {
    const GroundFactor& f = factors_[static_cast<size_t>(fi)];
    if (f.head == v && f.body1 >= 0) out.push_back(fi);
  }
  return out;
}

std::string FactorGraph::ExplainLineage(
    int32_t v, int max_depth,
    const std::function<std::string(FactId)>& describe) const {
  std::string out;
  std::function<void(int32_t, int)> recurse = [&](int32_t var, int depth) {
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += describe(fact_id(var));
    out += "\n";
    if (depth >= max_depth) return;
    for (int32_t fi : DerivationsOf(var)) {
      const GroundFactor& f = factors_[static_cast<size_t>(fi)];
      out.append(static_cast<size_t>(depth) * 2 + 2, ' ');
      out += StrFormat("<- (rule weight %.2f)\n", f.weight);
      for (int32_t b : {f.body1, f.body2}) {
        if (b >= 0) recurse(b, depth + 2);
      }
    }
  };
  recurse(v, 0);
  return out;
}

}  // namespace probkb
