#include "quality/error_analysis.h"

#include <unordered_map>

namespace probkb {

const char* ErrorSourceToString(ErrorSource source) {
  switch (source) {
    case ErrorSource::kAmbiguousEntity:
      return "Ambiguities (detected)";
    case ErrorSource::kAmbiguousJoinKey:
      return "Ambiguous join keys";
    case ErrorSource::kIncorrectRule:
      return "Incorrect rules";
    case ErrorSource::kIncorrectExtraction:
      return "Incorrect extractions";
    case ErrorSource::kGeneralType:
      return "General types";
    case ErrorSource::kSynonym:
      return "Synonyms";
    case ErrorSource::kUnknown:
      return "Unknown";
  }
  return "?";
}

std::vector<ViolatorClassification> ClassifyViolators(
    const Table& violators, const Table& t_pi, const Table* t_omega,
    const FactorGraph* graph, const ErrorLabels& labels) {
  // Functional relations per side (Type I keys x, Type II keys y); when a
  // TOmega table is provided, only facts of these relations participate in
  // violations and get inspected.
  std::set<RelationId> functional_arg[2];
  if (t_omega != nullptr) {
    for (int64_t i = 0; i < t_omega->NumRows(); ++i) {
      RowView r = t_omega->row(i);
      int arg = static_cast<int>(r[tomega::kArg].i64());
      if (arg == 1 || arg == 2) {
        functional_arg[arg - 1].insert(r[tomega::kR].i64());
      }
    }
  }

  // Index TPi rows by fact id (lineage lookups) and by keyed entity per
  // side (violation-group lookups).
  std::unordered_map<FactId, int64_t> row_of_id;
  std::unordered_map<EntityId, std::vector<int64_t>> rows_by_x, rows_by_y;
  for (int64_t i = 0; i < t_pi.NumRows(); ++i) {
    RowView r = t_pi.row(i);
    row_of_id[r[tpi::kI].i64()] = i;
    rows_by_x[r[tpi::kX].i64()].push_back(i);
    rows_by_y[r[tpi::kY].i64()].push_back(i);
  }

  // Lineage inspection of an inferred fact's derivations: did any join
  // through an ambiguous z, and did any use an unsound rule (matched by
  // (head, body1, body2) relation signature)?
  struct DerivationFlags {
    bool ambiguous_join = false;
    bool bad_rule = false;
  };
  auto inspect_derivations = [&](FactId id, RelationId head_rel) {
    DerivationFlags flags;
    if (graph == nullptr) return flags;
    int32_t v = graph->VariableOf(id);
    if (v < 0) return flags;
    for (int32_t fi : graph->DerivationsOf(v)) {
      const GroundFactor& f = graph->factors()[static_cast<size_t>(fi)];
      auto it1 = row_of_id.find(graph->fact_id(f.body1));
      if (it1 == row_of_id.end()) continue;
      RowView b1 = t_pi.row(it1->second);
      if (f.body2 < 0) {
        if (labels.bad_rule_signatures.count(
                {head_rel, b1[tpi::kR].i64(), kInvalidId}) > 0) {
          flags.bad_rule = true;
        }
        continue;
      }
      auto it2 = row_of_id.find(graph->fact_id(f.body2));
      if (it2 == row_of_id.end()) continue;
      RowView b2 = t_pi.row(it2->second);
      if (labels.bad_rule_signatures.count(
              {head_rel, b1[tpi::kR].i64(), b2[tpi::kR].i64()}) > 0) {
        flags.bad_rule = true;
      }
      // The join variable z is whichever entity the two body atoms share.
      for (int64_t z : {b1[tpi::kX].i64(), b1[tpi::kY].i64()}) {
        if ((z == b2[tpi::kX].i64() || z == b2[tpi::kY].i64()) &&
            labels.ambiguous_entities.count(z) > 0) {
          flags.ambiguous_join = true;
        }
      }
    }
    return flags;
  };

  std::vector<ViolatorClassification> out;
  out.reserve(static_cast<size_t>(violators.NumRows()));
  for (int64_t i = 0; i < violators.NumRows(); ++i) {
    RowView v = violators.row(i);
    ViolatorClassification c;
    c.entity = v[0].i64();
    c.cls = v[1].i64();
    const int arg = v.width() > 2 ? static_cast<int>(v[2].i64()) : 1;

    if (labels.ambiguous_entities.count(c.entity) > 0) {
      c.source = ErrorSource::kAmbiguousEntity;
      out.push_back(c);
      continue;
    }

    // The facts participating in the violation: keyed by the entity on the
    // violating side, restricted to functional relations of that side.
    const auto& rows_by_side = arg == 1 ? rows_by_x : rows_by_y;
    const int key_col = arg == 1 ? tpi::kC1 : tpi::kC2;
    const int other_col = arg == 1 ? tpi::kY : tpi::kX;

    bool bad_rule = false;
    bool bad_join = false;
    bool bad_extraction = false;
    bool general_type = false;
    bool synonym = false;
    auto it = rows_by_side.find(c.entity);
    if (it != rows_by_side.end()) {
      for (int64_t row_idx : it->second) {
        RowView r = t_pi.row(row_idx);
        if (r[key_col].i64() != c.cls) continue;
        RelationId rel = r[tpi::kR].i64();
        if (t_omega != nullptr &&
            functional_arg[arg - 1].count(rel) == 0) {
          continue;  // not part of any violating group
        }
        EntityId other = r[other_col].i64();
        if (labels.general_type_entities.count(other) > 0) {
          general_type = true;
        }
        if (labels.synonym_entities.count(other) > 0) synonym = true;
        if (labels.incorrect_extractions.count(
                {rel, r[tpi::kX].i64(), r[tpi::kY].i64()}) > 0) {
          bad_extraction = true;
        }
        if (labels.bad_rule_heads.count(rel) > 0) bad_rule = true;
        if (r[tpi::kW].is_null()) {  // inferred fact
          DerivationFlags flags =
              inspect_derivations(r[tpi::kI].i64(), rel);
          bad_join = bad_join || flags.ambiguous_join;
          bad_rule = bad_rule || flags.bad_rule;
        }
      }
    }
    if (bad_join) {
      c.source = ErrorSource::kAmbiguousJoinKey;
    } else if (bad_extraction) {
      c.source = ErrorSource::kIncorrectExtraction;
    } else if (bad_rule) {
      c.source = ErrorSource::kIncorrectRule;
    } else if (general_type) {
      c.source = ErrorSource::kGeneralType;
    } else if (synonym) {
      c.source = ErrorSource::kSynonym;
    } else {
      c.source = ErrorSource::kUnknown;
    }
    out.push_back(c);
  }
  return out;
}

std::map<ErrorSource, double> ErrorSourceDistribution(
    const std::vector<ViolatorClassification>& classified) {
  std::map<ErrorSource, double> out;
  if (classified.empty()) return out;
  for (const auto& c : classified) out[c.source] += 1.0;
  for (auto& [source, count] : out) {
    (void)source;
    count /= static_cast<double>(classified.size());
  }
  return out;
}

}  // namespace probkb
