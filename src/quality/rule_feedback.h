#ifndef PROBKB_QUALITY_RULE_FEEDBACK_H_
#define PROBKB_QUALITY_RULE_FEEDBACK_H_

#include <vector>

#include "factor/factor_graph.h"
#include "kb/relational_model.h"
#include "kb/rule.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief Per-rule reliability feedback computed from constraint
/// violations — the improvement the paper sketches in Section 6.2.3
/// ("violations caused by propagated errors may indicate low credibility
/// of the inference rules, which can be utilized to improve rule
/// learners").
struct RuleFeedback {
  size_t rule_index = 0;
  /// Derivations of this rule whose conclusion is keyed by a violating
  /// entity.
  int64_t violating_derivations = 0;
  /// All derivations of this rule in the factor graph.
  int64_t total_derivations = 0;
  /// violating / total (0 when the rule never fired).
  double violation_rate = 0.0;
};

/// \brief Attributes each ground derivation (non-singleton factor) in
/// `graph` to the rule that produced it — matched on the (head, body1,
/// body2) relation signature plus weight — and counts how many of each
/// rule's conclusions are keyed by an entity of `violators` (rows
/// (e, Ce, arg) from FindConstraintViolators).
Result<std::vector<RuleFeedback>> ComputeRuleFeedback(
    const std::vector<HornRule>& rules, const Table& t_pi,
    const Table& violators, const FactorGraph& graph);

/// \brief Folds feedback into the rules' learner scores:
/// score' = score * (1 - alpha * violation_rate). Rules whose conclusions
/// keep violating constraints sink in the rule-cleaning ranking.
std::vector<HornRule> ApplyFeedbackToScores(
    std::vector<HornRule> rules, const std::vector<RuleFeedback>& feedback,
    double alpha = 1.0);

}  // namespace probkb

#endif  // PROBKB_QUALITY_RULE_FEEDBACK_H_
