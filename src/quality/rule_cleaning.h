#ifndef PROBKB_QUALITY_RULE_CLEANING_H_
#define PROBKB_QUALITY_RULE_CLEANING_H_

#include <vector>

#include "kb/rule.h"

namespace probkb {

/// \brief Rule cleaning (Section 5.3): ranks rules by their
/// statistical-significance score and keeps the top `theta` fraction
/// (theta in [0, 1]; 1 keeps everything). Ties break toward keeping the
/// earlier rule, and the original rule order is preserved in the output.
std::vector<HornRule> TopThetaRules(const std::vector<HornRule>& rules,
                                    double theta);

}  // namespace probkb

#endif  // PROBKB_QUALITY_RULE_CLEANING_H_
