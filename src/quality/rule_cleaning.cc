#include "quality/rule_cleaning.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace probkb {

std::vector<HornRule> TopThetaRules(const std::vector<HornRule>& rules,
                                    double theta) {
  if (theta >= 1.0 || rules.empty()) return rules;
  if (theta <= 0.0) return {};
  const size_t keep = std::max<size_t>(
      1, static_cast<size_t>(std::llround(theta * rules.size())));

  // Select the indices of the top-`keep` scores, then emit in input order.
  std::vector<size_t> order(rules.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return rules[a].score > rules[b].score;
  });
  order.resize(keep);
  std::sort(order.begin(), order.end());

  std::vector<HornRule> out;
  out.reserve(keep);
  for (size_t i : order) out.push_back(rules[i]);
  return out;
}

}  // namespace probkb
