#include "quality/rule_feedback.h"

#include <cmath>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace probkb {

namespace {

/// Rules are matched to ground factors by (head, body1, body2, weight in
/// millis): the factor table stores the rule weight, and together with the
/// three relation symbols this identifies the producing rule(s). Distinct
/// rules sharing all four are indistinguishable at the factor level and
/// share the counts.
using RuleSig = std::tuple<RelationId, RelationId, RelationId, int64_t>;

int64_t Millis(double w) {
  return static_cast<int64_t>(std::llround(w * 1000.0));
}

}  // namespace

Result<std::vector<RuleFeedback>> ComputeRuleFeedback(
    const std::vector<HornRule>& rules, const Table& t_pi,
    const Table& violators, const FactorGraph& graph) {
  // Index TPi rows by fact id.
  std::unordered_map<FactId, int64_t> row_of_id;
  for (int64_t i = 0; i < t_pi.NumRows(); ++i) {
    row_of_id[t_pi.row(i)[tpi::kI].i64()] = i;
  }

  // Violating (entity, class) keys per side.
  auto key = [](EntityId e, ClassId c) {
    return (static_cast<uint64_t>(e) << 20) | static_cast<uint64_t>(c);
  };
  std::unordered_set<uint64_t> viol_x, viol_y;
  for (int64_t i = 0; i < violators.NumRows(); ++i) {
    RowView v = violators.row(i);
    uint64_t k = key(v[0].i64(), v[1].i64());
    if (v.width() > 2 && v[2].i64() == 2) {
      viol_y.insert(k);
    } else {
      viol_x.insert(k);
    }
  }

  // Rule signature -> rule indices.
  std::map<RuleSig, std::vector<size_t>> rules_by_sig;
  for (size_t i = 0; i < rules.size(); ++i) {
    const HornRule& r = rules[i];
    rules_by_sig[{r.head, r.body1, r.body2, Millis(r.weight)}].push_back(i);
  }

  std::vector<RuleFeedback> feedback(rules.size());
  for (size_t i = 0; i < rules.size(); ++i) feedback[i].rule_index = i;

  for (const GroundFactor& f : graph.factors()) {
    if (f.body1 < 0) continue;  // singleton: not a rule application
    auto head_it = row_of_id.find(graph.fact_id(f.head));
    auto b1_it = row_of_id.find(graph.fact_id(f.body1));
    if (head_it == row_of_id.end() || b1_it == row_of_id.end()) continue;
    RowView head = t_pi.row(head_it->second);
    RelationId b2_rel = kInvalidId;
    if (f.body2 >= 0) {
      auto b2_it = row_of_id.find(graph.fact_id(f.body2));
      if (b2_it == row_of_id.end()) continue;
      b2_rel = t_pi.row(b2_it->second)[tpi::kR].i64();
    }
    RuleSig sig{head[tpi::kR].i64(), t_pi.row(b1_it->second)[tpi::kR].i64(),
                b2_rel, Millis(f.weight)};
    auto it = rules_by_sig.find(sig);
    if (it == rules_by_sig.end()) continue;

    bool violating =
        viol_x.count(key(head[tpi::kX].i64(), head[tpi::kC1].i64())) > 0 ||
        viol_y.count(key(head[tpi::kY].i64(), head[tpi::kC2].i64())) > 0;
    for (size_t rule_index : it->second) {
      ++feedback[rule_index].total_derivations;
      if (violating) ++feedback[rule_index].violating_derivations;
    }
  }

  for (RuleFeedback& f : feedback) {
    f.violation_rate =
        f.total_derivations == 0
            ? 0.0
            : static_cast<double>(f.violating_derivations) /
                  static_cast<double>(f.total_derivations);
  }
  return feedback;
}

std::vector<HornRule> ApplyFeedbackToScores(
    std::vector<HornRule> rules, const std::vector<RuleFeedback>& feedback,
    double alpha) {
  for (const RuleFeedback& f : feedback) {
    if (f.rule_index >= rules.size()) continue;
    HornRule& rule = rules[f.rule_index];
    rule.score *= std::max(0.0, 1.0 - alpha * f.violation_rate);
  }
  return rules;
}

}  // namespace probkb
