#ifndef PROBKB_QUALITY_ERROR_ANALYSIS_H_
#define PROBKB_QUALITY_ERROR_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "factor/factor_graph.h"
#include "kb/relational_model.h"
#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief Sources of constraint violations identified in Section 5 /
/// Figure 7(b).
enum class ErrorSource {
  kAmbiguousEntity,       // E3: one name, many referents (detected)
  kAmbiguousJoinKey,      // inference joined through an ambiguous entity
  kIncorrectRule,         // E2: fact derived by an unsound rule
  kIncorrectExtraction,   // E1: the IE system emitted a wrong fact
  kGeneralType,           // e.g. both "New York" and "U.S." are Places
  kSynonym,               // two names for the same referent
  kUnknown,
};

const char* ErrorSourceToString(ErrorSource source);

/// \brief Ground-truth annotations of the injected errors (produced by the
/// synthetic generator; the paper used human judges on 100 samples).
struct ErrorLabels {
  std::set<EntityId> ambiguous_entities;
  std::set<EntityId> general_type_entities;
  std::set<EntityId> synonym_entities;
  /// Base facts injected as extraction errors, keyed (R, x, y).
  std::set<std::tuple<RelationId, EntityId, EntityId>> incorrect_extractions;
  /// Head relations that only unsound rules produce.
  std::set<RelationId> bad_rule_heads;
  /// (head, body1, body2) relation signatures of the unsound rules
  /// (body2 = kInvalidId for length-2 rules); lineage matching uses these
  /// to attribute an inferred fact to an unsound derivation.
  std::set<std::tuple<RelationId, RelationId, RelationId>>
      bad_rule_signatures;
};

struct ViolatorClassification {
  EntityId entity = kInvalidId;
  ClassId cls = kInvalidId;
  ErrorSource source = ErrorSource::kUnknown;
};

/// \brief Attributes each constraint-violating entity (output of
/// FindConstraintViolators: rows (e, Ce, arg)) to an error source, using
/// the ground-truth labels plus the lineage recorded in the factor graph
/// (Section 4.2.3's lineage application).
///
/// Only the facts participating in the violation are inspected: those of
/// functional relations (per `t_omega`, the TOmega table; pass nullptr to
/// inspect all facts of the entity) keyed by the violating entity on the
/// violating side. Precedence mirrors the paper's analysis: a directly
/// ambiguous entity counts as "ambiguity (detected)"; otherwise
/// derivations that joined through an ambiguous key, then extraction
/// errors, then unsound-rule conclusions, then general-type / synonym
/// artifacts on the co-occurring entities.
std::vector<ViolatorClassification> ClassifyViolators(
    const Table& violators, const Table& t_pi, const Table* t_omega,
    const FactorGraph* graph, const ErrorLabels& labels);

/// \brief Histogram of sources as fractions (Figure 7(b)'s pie chart).
std::map<ErrorSource, double> ErrorSourceDistribution(
    const std::vector<ViolatorClassification>& classified);

}  // namespace probkb

#endif  // PROBKB_QUALITY_ERROR_ANALYSIS_H_
