#include "fault/fault_injector.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "util/strings.h"

namespace probkb {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSegmentFailure:
      return "segment failure";
    case FaultKind::kDropBatch:
      return "dropped batch";
    case FaultKind::kDuplicateBatch:
      return "duplicated batch";
    case FaultKind::kMemoryExhausted:
      return "memory exhausted";
    case FaultKind::kDeadlineTrip:
      return "deadline trip";
    case FaultKind::kWorkerKill:
      return "worker kill";
    case FaultKind::kCorruptFrame:
      return "corrupt frame";
  }
  return "unknown";
}

double RetryPolicy::BackoffSeconds(int attempt) const {
  double backoff = initial_backoff_seconds;
  // A non-growing multiplier means flat backoff, and once a growing one
  // reaches the cap further multiplies change nothing: both exits keep an
  // absurd `attempt` (e.g. INT_MAX from a corrupted counter) from spinning
  // the loop or overflowing the product to +inf before the clamp.
  if (backoff_multiplier > 1.0) {
    for (int i = 1; i < attempt && backoff < max_backoff_seconds; ++i) {
      backoff *= backoff_multiplier;
    }
  }
  return std::min(backoff, max_backoff_seconds);
}

std::string FaultStats::ToString() const {
  return StrFormat(
      "faults: %lld segment failures, %lld dropped, %lld duplicated, "
      "%lld memory trips, %lld deadline trips, %lld worker kills, "
      "%lld corrupted frames; recovery: %lld retries, "
      "%lld recovered, %lld unrecovered, %lld tuples reshipped, "
      "%.3fs backoff",
      static_cast<long long>(segment_failures),
      static_cast<long long>(batches_dropped),
      static_cast<long long>(batches_duplicated),
      static_cast<long long>(memory_trips),
      static_cast<long long>(deadline_trips),
      static_cast<long long>(worker_kills),
      static_cast<long long>(frames_corrupted),
      static_cast<long long>(retries),
      static_cast<long long>(recovered_faults),
      static_cast<long long>(unrecovered_motions),
      static_cast<long long>(tuples_reshipped), backoff_seconds);
}

int FaultInjector::PickVictim(int event_field, int n) {
  if (event_field >= 0 && event_field < n) return event_field;
  return static_cast<int>(rng_.Uniform(static_cast<uint64_t>(n)));
}

std::vector<FaultEvent> FaultInjector::MotionFaults(int64_t motion_index,
                                                    int attempt,
                                                    int num_segments) {
  std::vector<FaultEvent> fired;
  if (!options_.enabled || num_segments <= 0) return fired;

  for (const FaultEvent& e : options_.schedule) {
    if (e.motion != motion_index || e.attempt != attempt) continue;
    if (e.kind == FaultKind::kMemoryExhausted ||
        e.kind == FaultKind::kDeadlineTrip) {
      continue;  // operator-budget faults fire via OperatorFault
    }
    FaultEvent f = e;
    f.segment = PickVictim(e.segment, num_segments);
    f.target = PickVictim(e.target, num_segments);
    fired.push_back(f);
  }

  // Random faults model transient failures: they strike the first attempt
  // only, so recovery is guaranteed to converge and a chaos sweep can
  // assert bit-identical results against the fault-free baseline.
  if (attempt == 0 && random_faults_injected_ < options_.max_random_faults) {
    auto roll = [&](double prob, FaultKind kind) {
      // Always consume one uniform draw so the random stream (and thus the
      // whole schedule) does not depend on which probabilities are zero.
      bool hit = rng_.UniformDouble() < prob;
      if (!hit || random_faults_injected_ >= options_.max_random_faults) {
        return;
      }
      FaultEvent f;
      f.kind = kind;
      f.motion = motion_index;
      f.segment = PickVictim(-1, num_segments);
      f.target = PickVictim(-1, num_segments);
      fired.push_back(f);
      ++random_faults_injected_;
    };
    roll(options_.segment_failure_prob, FaultKind::kSegmentFailure);
    roll(options_.drop_batch_prob, FaultKind::kDropBatch);
    roll(options_.duplicate_batch_prob, FaultKind::kDuplicateBatch);
    roll(options_.worker_kill_prob, FaultKind::kWorkerKill);
    roll(options_.corrupt_frame_prob, FaultKind::kCorruptFrame);
  }

  for (const FaultEvent& f : fired) {
    switch (f.kind) {
      case FaultKind::kSegmentFailure:
        ++stats_.segment_failures;
        break;
      case FaultKind::kDropBatch:
        ++stats_.batches_dropped;
        break;
      case FaultKind::kDuplicateBatch:
        ++stats_.batches_duplicated;
        break;
      case FaultKind::kWorkerKill:
        ++stats_.worker_kills;
        break;
      case FaultKind::kCorruptFrame:
        ++stats_.frames_corrupted;
        break;
      default:
        break;
    }
    FlightRecorder::Global()->Record(FrEvent::kFaultInjected,
                                     FaultKindToString(f.kind), motion_index,
                                     attempt, f.segment);
  }
  return fired;
}

Status FaultInjector::OperatorFault(int64_t op_index,
                                    const std::string& label) {
  if (!options_.enabled) return Status::OK();
  for (const FaultEvent& e : options_.schedule) {
    if (e.motion != op_index) continue;
    if (e.kind == FaultKind::kMemoryExhausted) {
      ++stats_.memory_trips;
      FlightRecorder::Global()->Record(FrEvent::kFaultInjected,
                                       FaultKindToString(e.kind), op_index);
      return Status::ResourceExhausted(StrFormat(
          "injected memory budget trip in operator %lld (%s)",
          static_cast<long long>(op_index), label.c_str()));
    }
    if (e.kind == FaultKind::kDeadlineTrip) {
      ++stats_.deadline_trips;
      FlightRecorder::Global()->Record(FrEvent::kFaultInjected,
                                       FaultKindToString(e.kind), op_index);
      return Status::DeadlineExceeded(StrFormat(
          "injected deadline trip in operator %lld (%s)",
          static_cast<long long>(op_index), label.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace probkb
