#include "fault/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>

#include "obs/flight_recorder.h"
#include "relational/table_io.h"
#include "util/logging.h"
#include "util/strings.h"

namespace probkb {

namespace {

constexpr const char kManifestName[] = "MANIFEST";
constexpr const char kStagingName[] = ".staging";
constexpr const char kFormatLine[] = "probkb-grounding-checkpoint 1";

std::function<void(const std::string&)>& FsyncObserver() {
  static std::function<void(const std::string&)> observer;
  return observer;
}

/// Flushes `path` (a file or a directory) to stable storage. Without this,
/// a power loss after the MANIFEST rename could surface a manifest that
/// certifies torn table files: rename() orders metadata, not data.
Status FsyncPath(const std::string& path, bool is_dir) {
  int fd = open(path.c_str(), is_dir ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for fsync: " + std::strerror(errno));
  }
  if (fsync(fd) != 0) {
    const int err = errno;
    close(fd);
    return Status::IOError("fsync of '" + path +
                           "' failed: " + std::strerror(err));
  }
  close(fd);
  if (FsyncObserver()) FsyncObserver()(path);
  return Status::OK();
}

std::string PathJoin(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / name).string();
}

/// One table file written into the staging directory: its final name and
/// its row count, recorded in the MANIFEST for read-time validation.
struct StagedTable {
  std::string name;
  int64_t rows = 0;
};

Status StageTable(const Table& table, const std::string& staging,
                  std::string name, std::vector<StagedTable>* staged) {
  PROBKB_RETURN_NOT_OK(WriteTableTsvFile(table, PathJoin(staging, name)));
  staged->push_back({std::move(name), table.NumRows()});
  return Status::OK();
}

Status StageSegmentGroup(const std::string& staging, const char* prefix,
                         const std::vector<TablePtr>& segments,
                         std::vector<StagedTable>* staged) {
  for (size_t s = 0; s < segments.size(); ++s) {
    if (segments[s] == nullptr) {
      return Status::InvalidArgument(
          StrFormat("checkpoint segment group '%s' has a null table",
                    prefix));
    }
    PROBKB_RETURN_NOT_OK(StageTable(
        *segments[s], staging, StrFormat("%s.seg%zu.tsv", prefix, s),
        staged));
  }
  return Status::OK();
}

Result<TablePtr> ReadCheckpointTable(
    const Schema& schema, const std::string& dir, const std::string& name,
    const std::map<std::string, int64_t>& manifest_rows) {
  PROBKB_ASSIGN_OR_RETURN(TablePtr table,
                          ReadTableTsvFile(schema, PathJoin(dir, name)));
  auto it = manifest_rows.find(name);
  if (it != manifest_rows.end() && it->second != table->NumRows()) {
    return Status::ParseError(StrFormat(
        "checkpoint table '%s' has %lld rows but the manifest records %lld",
        name.c_str(), static_cast<long long>(table->NumRows()),
        static_cast<long long>(it->second)));
  }
  return table;
}

Result<std::vector<TablePtr>> ReadSegmentGroup(
    const Schema& schema, const std::string& dir, const char* prefix, int n,
    const std::map<std::string, int64_t>& manifest_rows) {
  std::vector<TablePtr> segments;
  segments.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    PROBKB_ASSIGN_OR_RETURN(
        TablePtr seg,
        ReadCheckpointTable(schema, dir,
                            StrFormat("%s.seg%d.tsv", prefix, s),
                            manifest_rows));
    segments.push_back(std::move(seg));
  }
  return segments;
}

}  // namespace

void SetCheckpointFsyncObserverForTest(
    std::function<void(const std::string&)> observer) {
  FsyncObserver() = std::move(observer);
}

Schema BannedEntitySchema() {
  return Schema({{"e", ColumnType::kInt64}, {"c", ColumnType::kInt64}});
}

bool GroundingCheckpointExists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::is_regular_file(PathJoin(dir, kManifestName), ec);
}

Status WriteGroundingCheckpoint(const GroundingCheckpoint& cp,
                                const std::string& dir) {
  if (cp.t_pi == nullptr) {
    return Status::InvalidArgument("checkpoint has no t_pi table");
  }
  const bool has_views = !cp.tx_segments.empty();
  if (cp.num_segments > 0) {
    if (static_cast<int>(cp.t0_segments.size()) != cp.num_segments) {
      return Status::InvalidArgument(
          "checkpoint t0 segment count does not match num_segments");
    }
    if (has_views &&
        (static_cast<int>(cp.tx_segments.size()) != cp.num_segments ||
         static_cast<int>(cp.ty_segments.size()) != cp.num_segments ||
         static_cast<int>(cp.txy_segments.size()) != cp.num_segments)) {
      return Status::InvalidArgument(
          "checkpoint view segment counts do not match num_segments");
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint dir '" + dir +
                           "': " + ec.message());
  }

  // Stage the complete snapshot in a scratch subdirectory first; the live
  // directory is only touched by the commit below. The commit removes the
  // previous MANIFEST before the first table file is replaced and renames
  // the new MANIFEST into place last, so at every crash point the
  // directory holds the old complete checkpoint, no checkpoint at all, or
  // the new complete one — an existing MANIFEST always certifies a
  // consistent snapshot, even when the same dir is rewritten every
  // iteration.
  const std::string staging = PathJoin(dir, kStagingName);
  std::filesystem::remove_all(staging, ec);  // debris of a crashed write
  std::filesystem::create_directories(staging, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint staging dir '" +
                           staging + "': " + ec.message());
  }

  std::vector<StagedTable> staged;
  PROBKB_RETURN_NOT_OK(StageTable(*cp.t_pi, staging, "t_pi.tsv", &staged));
  const Table empty_banned(BannedEntitySchema());
  PROBKB_RETURN_NOT_OK(StageTable(cp.banned_x ? *cp.banned_x : empty_banned,
                                  staging, "banned_x.tsv", &staged));
  PROBKB_RETURN_NOT_OK(StageTable(cp.banned_y ? *cp.banned_y : empty_banned,
                                  staging, "banned_y.tsv", &staged));
  if (cp.num_segments > 0) {
    PROBKB_RETURN_NOT_OK(
        StageSegmentGroup(staging, "t0", cp.t0_segments, &staged));
    if (has_views) {
      PROBKB_RETURN_NOT_OK(
          StageSegmentGroup(staging, "tx", cp.tx_segments, &staged));
      PROBKB_RETURN_NOT_OK(
          StageSegmentGroup(staging, "ty", cp.ty_segments, &staged));
      PROBKB_RETURN_NOT_OK(
          StageSegmentGroup(staging, "txy", cp.txy_segments, &staged));
    }
  }

  {
    const std::string manifest = PathJoin(staging, kManifestName);
    std::ofstream out(manifest);
    if (!out) {
      return Status::IOError("cannot open '" + manifest + "' for write");
    }
    out << kFormatLine << "\n"
        << "iteration " << cp.iteration << "\n"
        << "next_fact_id " << cp.next_fact_id << "\n"
        << "delta_start " << cp.delta_start << "\n"
        << "num_segments " << cp.num_segments << "\n"
        << "has_views " << (has_views ? 1 : 0) << "\n";
    for (const StagedTable& t : staged) {
      out << "rows " << t.name << " " << t.rows << "\n";
    }
    if (!out.good()) return Status::IOError("manifest write failed");
  }

  // Make the staged bytes durable before any rename publishes them: every
  // staged table file and the staged MANIFEST are fsynced, so the commit
  // below only moves data that has already reached stable storage.
  for (const StagedTable& t : staged) {
    PROBKB_RETURN_NOT_OK(FsyncPath(PathJoin(staging, t.name), false));
  }
  PROBKB_RETURN_NOT_OK(FsyncPath(PathJoin(staging, kManifestName), false));

  // Commit: retire the old checkpoint, move tables into place, MANIFEST
  // last. The directory itself is fsynced before the MANIFEST rename (the
  // table renames must be durable before a manifest can certify them) and
  // after it (the certification itself must survive power loss).
  std::filesystem::remove(PathJoin(dir, kManifestName), ec);
  if (ec) {
    return Status::IOError("cannot retire previous checkpoint manifest: " +
                           ec.message());
  }
  for (const StagedTable& t : staged) {
    std::filesystem::rename(PathJoin(staging, t.name), PathJoin(dir, t.name),
                            ec);
    if (ec) {
      return Status::IOError("cannot commit checkpoint table '" + t.name +
                             "': " + ec.message());
    }
  }
  PROBKB_RETURN_NOT_OK(FsyncPath(dir, true));
  std::filesystem::rename(PathJoin(staging, kManifestName),
                          PathJoin(dir, kManifestName), ec);
  if (ec) {
    return Status::IOError("cannot finalize checkpoint manifest: " +
                           ec.message());
  }
  PROBKB_RETURN_NOT_OK(FsyncPath(dir, true));
  std::filesystem::remove_all(staging, ec);
  // Deliberately no directory path in the payload: dump bytes must not
  // depend on where the checkpoint lives (paths differ per run/thread).
  FlightRecorder::Global()->Record(
      FrEvent::kCheckpointCommit, "grounding", cp.iteration,
      static_cast<int64_t>(staged.size()),
      staged.empty() ? 0 : staged.front().rows);
  return Status::OK();
}

Result<GroundingCheckpoint> ReadGroundingCheckpoint(
    const Schema& t_pi_schema, const std::string& dir) {
  if (!GroundingCheckpointExists(dir)) {
    return Status::NotFound("no checkpoint manifest under '" + dir + "'");
  }
  // A crash between staging and commit leaves `.staging` behind; the next
  // *write* would clear it, but a resume-only run never writes, so the
  // debris would otherwise survive forever. The MANIFEST protocol makes
  // removal safe: whatever is in staging was never certified.
  {
    const std::string staging = PathJoin(dir, kStagingName);
    std::error_code ec;
    if (std::filesystem::exists(staging, ec)) {
      PROBKB_LOG(Warning) << "removing orphaned checkpoint staging dir '"
                          << staging << "' left by an interrupted write";
      std::filesystem::remove_all(staging, ec);
      if (ec) {
        return Status::IOError("cannot remove orphaned staging dir '" +
                               staging + "': " + ec.message());
      }
    }
  }
  std::ifstream in(PathJoin(dir, kManifestName));
  if (!in) return Status::IOError("cannot open checkpoint manifest");
  std::string line;
  if (!std::getline(in, line) || line != kFormatLine) {
    return Status::ParseError("unrecognized checkpoint format: '" + line +
                              "'");
  }
  GroundingCheckpoint cp;
  int64_t iteration = 0;
  int64_t has_views = 0;
  bool have_iteration = false, have_next_id = false;
  std::map<std::string, int64_t> manifest_rows;
  while (std::getline(in, line)) {
    auto tokens = Split(StripWhitespace(line), ' ');
    if (tokens.size() == 3 && tokens[0] == "rows") {
      int64_t rows = 0;
      if (!ParseInt64(tokens[2], &rows)) {
        return Status::ParseError("bad checkpoint manifest value in '" +
                                  line + "'");
      }
      manifest_rows[std::string(tokens[1])] = rows;
      continue;
    }
    if (tokens.size() != 2) continue;
    int64_t v = 0;
    if (!ParseInt64(tokens[1], &v)) {
      return Status::ParseError("bad checkpoint manifest value in '" + line +
                                "'");
    }
    if (tokens[0] == "iteration") {
      iteration = v;
      have_iteration = true;
    } else if (tokens[0] == "next_fact_id") {
      cp.next_fact_id = v;
      have_next_id = true;
    } else if (tokens[0] == "delta_start") {
      cp.delta_start = v;
    } else if (tokens[0] == "num_segments") {
      cp.num_segments = static_cast<int>(v);
    } else if (tokens[0] == "has_views") {
      has_views = v;
    }
  }
  if (!have_iteration || !have_next_id) {
    return Status::ParseError("checkpoint manifest is missing fields");
  }
  cp.iteration = static_cast<int>(iteration);
  PROBKB_ASSIGN_OR_RETURN(
      cp.t_pi,
      ReadCheckpointTable(t_pi_schema, dir, "t_pi.tsv", manifest_rows));
  PROBKB_ASSIGN_OR_RETURN(
      cp.banned_x, ReadCheckpointTable(BannedEntitySchema(), dir,
                                       "banned_x.tsv", manifest_rows));
  PROBKB_ASSIGN_OR_RETURN(
      cp.banned_y, ReadCheckpointTable(BannedEntitySchema(), dir,
                                       "banned_y.tsv", manifest_rows));
  if (cp.num_segments > 0) {
    PROBKB_ASSIGN_OR_RETURN(
        cp.t0_segments, ReadSegmentGroup(t_pi_schema, dir, "t0",
                                         cp.num_segments, manifest_rows));
    if (has_views != 0) {
      PROBKB_ASSIGN_OR_RETURN(
          cp.tx_segments, ReadSegmentGroup(t_pi_schema, dir, "tx",
                                           cp.num_segments, manifest_rows));
      PROBKB_ASSIGN_OR_RETURN(
          cp.ty_segments, ReadSegmentGroup(t_pi_schema, dir, "ty",
                                           cp.num_segments, manifest_rows));
      PROBKB_ASSIGN_OR_RETURN(
          cp.txy_segments, ReadSegmentGroup(t_pi_schema, dir, "txy",
                                            cp.num_segments, manifest_rows));
    }
  }
  return cp;
}

}  // namespace probkb
