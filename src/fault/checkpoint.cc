#include "fault/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "relational/table_io.h"
#include "util/strings.h"

namespace probkb {

namespace {

constexpr const char kManifestName[] = "MANIFEST";
constexpr const char kFormatLine[] = "probkb-grounding-checkpoint 1";

std::string PathJoin(const std::string& dir, const std::string& name) {
  return (std::filesystem::path(dir) / name).string();
}

Status WriteSegmentGroup(const std::string& dir, const char* prefix,
                         const std::vector<TablePtr>& segments) {
  for (size_t s = 0; s < segments.size(); ++s) {
    if (segments[s] == nullptr) {
      return Status::InvalidArgument(
          StrFormat("checkpoint segment group '%s' has a null table",
                    prefix));
    }
    PROBKB_RETURN_NOT_OK(WriteTableTsvFile(
        *segments[s], PathJoin(dir, StrFormat("%s.seg%zu.tsv", prefix, s))));
  }
  return Status::OK();
}

Result<std::vector<TablePtr>> ReadSegmentGroup(const Schema& schema,
                                               const std::string& dir,
                                               const char* prefix, int n) {
  std::vector<TablePtr> segments;
  segments.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    PROBKB_ASSIGN_OR_RETURN(
        TablePtr seg,
        ReadTableTsvFile(schema,
                         PathJoin(dir, StrFormat("%s.seg%d.tsv", prefix, s))));
    segments.push_back(std::move(seg));
  }
  return segments;
}

}  // namespace

Schema BannedEntitySchema() {
  return Schema({{"e", ColumnType::kInt64}, {"c", ColumnType::kInt64}});
}

bool GroundingCheckpointExists(const std::string& dir) {
  std::error_code ec;
  return std::filesystem::is_regular_file(PathJoin(dir, kManifestName), ec);
}

Status WriteGroundingCheckpoint(const GroundingCheckpoint& cp,
                                const std::string& dir) {
  if (cp.t_pi == nullptr) {
    return Status::InvalidArgument("checkpoint has no t_pi table");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint dir '" + dir +
                           "': " + ec.message());
  }
  PROBKB_RETURN_NOT_OK(
      WriteTableTsvFile(*cp.t_pi, PathJoin(dir, "t_pi.tsv")));
  const Table empty_banned(BannedEntitySchema());
  PROBKB_RETURN_NOT_OK(WriteTableTsvFile(
      cp.banned_x ? *cp.banned_x : empty_banned,
      PathJoin(dir, "banned_x.tsv")));
  PROBKB_RETURN_NOT_OK(WriteTableTsvFile(
      cp.banned_y ? *cp.banned_y : empty_banned,
      PathJoin(dir, "banned_y.tsv")));

  const bool has_views = !cp.tx_segments.empty();
  if (cp.num_segments > 0) {
    if (static_cast<int>(cp.t0_segments.size()) != cp.num_segments) {
      return Status::InvalidArgument(
          "checkpoint t0 segment count does not match num_segments");
    }
    PROBKB_RETURN_NOT_OK(WriteSegmentGroup(dir, "t0", cp.t0_segments));
    if (has_views) {
      if (static_cast<int>(cp.tx_segments.size()) != cp.num_segments ||
          static_cast<int>(cp.ty_segments.size()) != cp.num_segments ||
          static_cast<int>(cp.txy_segments.size()) != cp.num_segments) {
        return Status::InvalidArgument(
            "checkpoint view segment counts do not match num_segments");
      }
      PROBKB_RETURN_NOT_OK(WriteSegmentGroup(dir, "tx", cp.tx_segments));
      PROBKB_RETURN_NOT_OK(WriteSegmentGroup(dir, "ty", cp.ty_segments));
      PROBKB_RETURN_NOT_OK(WriteSegmentGroup(dir, "txy", cp.txy_segments));
    }
  }

  // The MANIFEST lands last, via rename: its presence certifies the tables
  // above are complete.
  const std::string tmp = PathJoin(dir, "MANIFEST.tmp");
  {
    std::ofstream out(tmp);
    if (!out) return Status::IOError("cannot open '" + tmp + "' for write");
    out << kFormatLine << "\n"
        << "iteration " << cp.iteration << "\n"
        << "next_fact_id " << cp.next_fact_id << "\n"
        << "delta_start " << cp.delta_start << "\n"
        << "num_segments " << cp.num_segments << "\n"
        << "has_views " << (has_views ? 1 : 0) << "\n";
    if (!out.good()) return Status::IOError("manifest write failed");
  }
  std::filesystem::rename(tmp, PathJoin(dir, kManifestName), ec);
  if (ec) {
    return Status::IOError("cannot finalize checkpoint manifest: " +
                           ec.message());
  }
  return Status::OK();
}

Result<GroundingCheckpoint> ReadGroundingCheckpoint(
    const Schema& t_pi_schema, const std::string& dir) {
  if (!GroundingCheckpointExists(dir)) {
    return Status::NotFound("no checkpoint manifest under '" + dir + "'");
  }
  std::ifstream in(PathJoin(dir, kManifestName));
  if (!in) return Status::IOError("cannot open checkpoint manifest");
  std::string line;
  if (!std::getline(in, line) || line != kFormatLine) {
    return Status::ParseError("unrecognized checkpoint format: '" + line +
                              "'");
  }
  GroundingCheckpoint cp;
  int64_t iteration = 0;
  int64_t has_views = 0;
  bool have_iteration = false, have_next_id = false;
  while (std::getline(in, line)) {
    auto tokens = Split(StripWhitespace(line), ' ');
    if (tokens.size() != 2) continue;
    int64_t v = 0;
    if (!ParseInt64(tokens[1], &v)) {
      return Status::ParseError("bad checkpoint manifest value in '" + line +
                                "'");
    }
    if (tokens[0] == "iteration") {
      iteration = v;
      have_iteration = true;
    } else if (tokens[0] == "next_fact_id") {
      cp.next_fact_id = v;
      have_next_id = true;
    } else if (tokens[0] == "delta_start") {
      cp.delta_start = v;
    } else if (tokens[0] == "num_segments") {
      cp.num_segments = static_cast<int>(v);
    } else if (tokens[0] == "has_views") {
      has_views = v;
    }
  }
  if (!have_iteration || !have_next_id) {
    return Status::ParseError("checkpoint manifest is missing fields");
  }
  cp.iteration = static_cast<int>(iteration);
  PROBKB_ASSIGN_OR_RETURN(
      cp.t_pi, ReadTableTsvFile(t_pi_schema, PathJoin(dir, "t_pi.tsv")));
  PROBKB_ASSIGN_OR_RETURN(
      cp.banned_x,
      ReadTableTsvFile(BannedEntitySchema(), PathJoin(dir, "banned_x.tsv")));
  PROBKB_ASSIGN_OR_RETURN(
      cp.banned_y,
      ReadTableTsvFile(BannedEntitySchema(), PathJoin(dir, "banned_y.tsv")));
  if (cp.num_segments > 0) {
    PROBKB_ASSIGN_OR_RETURN(
        cp.t0_segments,
        ReadSegmentGroup(t_pi_schema, dir, "t0", cp.num_segments));
    if (has_views != 0) {
      PROBKB_ASSIGN_OR_RETURN(
          cp.tx_segments,
          ReadSegmentGroup(t_pi_schema, dir, "tx", cp.num_segments));
      PROBKB_ASSIGN_OR_RETURN(
          cp.ty_segments,
          ReadSegmentGroup(t_pi_schema, dir, "ty", cp.num_segments));
      PROBKB_ASSIGN_OR_RETURN(
          cp.txy_segments,
          ReadSegmentGroup(t_pi_schema, dir, "txy", cp.num_segments));
    }
  }
  return cp;
}

}  // namespace probkb
