#ifndef PROBKB_FAULT_CHECKPOINT_H_
#define PROBKB_FAULT_CHECKPOINT_H_

#include <functional>
#include <string>
#include <vector>

#include "relational/table.h"
#include "util/result.h"

namespace probkb {

/// \brief Durable snapshot of the grounding fixpoint loop at an iteration
/// boundary.
///
/// Serialized as a directory of TSV tables (the table_io interchange
/// format) plus a MANIFEST with the scalar state. The MANIFEST is written
/// last via rename, so a checkpoint directory either holds a complete,
/// loadable snapshot or is ignored — a crash mid-write never corrupts the
/// previous checkpoint.
struct GroundingCheckpoint {
  /// Iterations completed when the snapshot was taken.
  int iteration = 0;
  int64_t next_fact_id = 0;
  /// Semi-naive delta start (TPi row count at the last merge boundary).
  int64_t delta_start = 0;
  TablePtr t_pi;
  /// Entities banned by constraint application, as (e, c) rows on the x
  /// and y side; resuming without these would re-derive deleted facts.
  TablePtr banned_x;
  TablePtr banned_y;

  /// MPP extension: per-segment snapshots of the distributed TPi copies.
  /// 0 segments marks a single-node checkpoint. t0 is the canonical copy;
  /// tx/ty/txy are the kViews replicates (empty under kNoViews). Segment
  /// row order is preserved exactly — it determines join output order and
  /// therefore fact-id assignment, so restoring it verbatim is what makes
  /// a resumed run bit-identical to an uninterrupted one.
  int num_segments = 0;
  std::vector<TablePtr> t0_segments;
  std::vector<TablePtr> tx_segments;
  std::vector<TablePtr> ty_segments;
  std::vector<TablePtr> txy_segments;
};

/// \brief Schema of the banned-entity tables: (e, c).
Schema BannedEntitySchema();

/// \brief Writes `cp` under `dir` (created if missing), atomically with
/// respect to the MANIFEST.
Status WriteGroundingCheckpoint(const GroundingCheckpoint& cp,
                                const std::string& dir);

/// \brief Loads a checkpoint; `t_pi_schema` validates the facts table.
Result<GroundingCheckpoint> ReadGroundingCheckpoint(
    const Schema& t_pi_schema, const std::string& dir);

/// \brief True if `dir` holds a complete checkpoint (a MANIFEST exists).
bool GroundingCheckpointExists(const std::string& dir);

/// \brief Test hook: observes every fsync the checkpoint writer issues, in
/// issue order, with the path being synced. A crash-durability regression
/// test asserts that every staged table file, the staged MANIFEST, and the
/// checkpoint directory (before and after the MANIFEST rename) are synced.
/// Pass nullptr to uninstall. Not thread-safe; tests only.
void SetCheckpointFsyncObserverForTest(
    std::function<void(const std::string&)> observer);

}  // namespace probkb

#endif  // PROBKB_FAULT_CHECKPOINT_H_
