#ifndef PROBKB_FAULT_FAULT_INJECTOR_H_
#define PROBKB_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace probkb {

/// \brief Failure classes the injector can produce inside the simulator.
///
/// The first three strike motions (Redistribute / Broadcast / Gather) and
/// are recoverable: the motion re-runs the lost work from the surviving
/// materialized inputs. The last two trip an operator's simulated budget
/// and surface as kResourceExhausted / kDeadlineExceeded, which the
/// pipeline degrades into a partial result (or resumes from a checkpoint).
enum class FaultKind {
  /// A segment dies mid-motion; every batch it contributed is lost.
  kSegmentFailure,
  /// One sender->receiver batch of a redistribute is dropped in flight.
  kDropBatch,
  /// One sender->receiver batch is delivered twice.
  kDuplicateBatch,
  /// An operator exceeds its simulated memory budget.
  kMemoryExhausted,
  /// An operator exceeds the simulated deadline.
  kDeadlineTrip,
  /// A worker process is SIGKILLed mid-motion (process runtime; in the
  /// simulator it degrades to a segment failure). Everything the victim
  /// contributed to the motion is lost, like kSegmentFailure.
  kWorkerKill,
  /// One shipped frame is damaged in flight; the receiver's checksum
  /// detects it and the frame is resent (recoverable, like kDropBatch).
  kCorruptFrame,
};

const char* FaultKindToString(FaultKind kind);

/// \brief True for fault kinds that lose a whole segment's contribution to
/// a motion (the victim's partitions must be re-shipped in full).
inline bool IsSegmentLoss(FaultKind kind) {
  return kind == FaultKind::kSegmentFailure || kind == FaultKind::kWorkerKill;
}

/// \brief One scheduled fault. Motions are numbered 0, 1, ... in issue
/// order across a simulation (MppContext assigns the index); `attempt` 0 is
/// the first try of a motion and k > 0 its k-th retry, so a schedule can
/// make the same motion fail repeatedly to exhaust the retry budget.
/// Operator-budget kinds (kMemoryExhausted / kDeadlineTrip) reuse `motion`
/// as a global operator index: the MPP simulator uses the motion index
/// itself, the single-node engine numbers operators consecutively across
/// all statements of a grounding run (one shared counter, see
/// ExecContext::set_shared_op_counter).
struct FaultEvent {
  FaultKind kind = FaultKind::kSegmentFailure;
  int64_t motion = 0;
  int attempt = 0;
  /// Victim source segment; -1 lets the injector pick one deterministically.
  int segment = -1;
  /// Destination segment of a batch fault; -1 lets the injector pick.
  int target = -1;
};

/// \brief Configuration of the deterministic fault injector.
///
/// Faults come from two sources: an explicit `schedule` (chaos tests pin
/// exact failure points) and seeded per-motion coin flips (chaos sweeps
/// explore many schedules from one integer). Both are fully deterministic:
/// the same options against the same workload produce the same faults.
struct FaultInjectionOptions {
  bool enabled = false;
  uint64_t seed = 0xC0FFEE;
  /// Per-motion probability that one source segment fails mid-motion.
  double segment_failure_prob = 0.0;
  /// Per-motion probability that one redistribute batch is dropped.
  double drop_batch_prob = 0.0;
  /// Per-motion probability that one redistribute batch is duplicated.
  double duplicate_batch_prob = 0.0;
  /// Per-motion probability that one worker process is killed (process
  /// runtime; the simulator treats it as a segment failure).
  double worker_kill_prob = 0.0;
  /// Per-motion probability that one shipped frame is corrupted in flight.
  double corrupt_frame_prob = 0.0;
  /// Cap on randomly injected faults (scheduled faults always fire).
  int64_t max_random_faults = 1'000'000;
  std::vector<FaultEvent> schedule;
};

/// \brief Retry policy for recoverable motion faults: capped exponential
/// backoff, charged to MppCost as kRecovery steps.
struct RetryPolicy {
  int max_attempts = 4;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;

  /// Backoff charged before retry number `attempt` (1-based).
  double BackoffSeconds(int attempt) const;
};

/// \brief Counters accumulated by the injector and the recovery paths.
struct FaultStats {
  int64_t segment_failures = 0;
  int64_t batches_dropped = 0;
  int64_t batches_duplicated = 0;
  int64_t memory_trips = 0;
  int64_t deadline_trips = 0;
  int64_t worker_kills = 0;
  int64_t frames_corrupted = 0;
  int64_t retries = 0;
  int64_t recovered_faults = 0;
  int64_t unrecovered_motions = 0;
  int64_t tuples_reshipped = 0;
  double backoff_seconds = 0.0;

  int64_t InjectedTotal() const {
    return segment_failures + batches_dropped + batches_duplicated +
           memory_trips + deadline_trips + worker_kills + frames_corrupted;
  }
  std::string ToString() const;
};

/// \brief Seeded, deterministic fault source threaded through the MPP
/// simulator and the engine's ExecContext.
///
/// The injector only *decides* faults; detection and recovery live in the
/// components (MppContext re-runs lost partitions, the grounders checkpoint
/// and resume). Stats of both sides accumulate here so the pipeline can
/// report per-stage failure counters.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectionOptions options)
      : options_(std::move(options)), rng_(options_.seed) {}

  bool enabled() const { return options_.enabled; }

  /// \brief All faults striking attempt `attempt` of motion `motion_index`
  /// over `num_segments` segments. Scheduled events fire on their exact
  /// (motion, attempt); random events fire on attempt 0 only, so a retry of
  /// a randomly failed motion always succeeds (transient-fault model).
  std::vector<FaultEvent> MotionFaults(int64_t motion_index, int attempt,
                                       int num_segments);

  /// \brief Scheduled operator-budget fault for engine operator number
  /// `op_index` (kMemoryExhausted / kDeadlineTrip reuse `motion` as the
  /// operator index); OK status if none fires.
  Status OperatorFault(int64_t op_index, const std::string& label);

  FaultStats* mutable_stats() { return &stats_; }
  const FaultStats& stats() const { return stats_; }
  const FaultInjectionOptions& options() const { return options_; }

 private:
  /// Picks a deterministic victim in [0, n) when the event left it at -1.
  int PickVictim(int event_field, int n);

  FaultInjectionOptions options_;
  Rng rng_;
  FaultStats stats_;
  int64_t random_faults_injected_ = 0;
};

}  // namespace probkb

#endif  // PROBKB_FAULT_FAULT_INJECTOR_H_
