#ifndef PROBKB_MLN_PARSER_H_
#define PROBKB_MLN_PARSER_H_

#include <string>
#include <string_view>

#include "kb/knowledge_base.h"
#include "util/result.h"

namespace probkb {

/// \brief Parses ProbKB's MLN program text format into a KnowledgeBase.
///
/// The format covers the components of Definition 1. Line-oriented;
/// comments start with `//` or `#`.
///
///   class Writer
///   relation born_in(Writer, City)
///   0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
///   1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
///   0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
///   functional born_in 1 1        // relation, type (1|2), degree
///
/// Facts annotate every argument with `entity:Class`. Rules annotate a
/// variable's class at its first mention; later mentions may omit it.
/// Rules must fall into the six Sherlock Horn structures (Section 4.2.2);
/// anything else is a parse error. A rule may carry a second number after
/// the weight — the learner's statistical-significance score used by rule
/// cleaning; it defaults to the weight.
Result<KnowledgeBase> ParseMln(std::string_view text);

/// \brief Parses a file on disk.
Result<KnowledgeBase> ParseMlnFile(const std::string& path);

/// \brief Serializes a KnowledgeBase back into the text format
/// (round-trips through ParseMln).
std::string SerializeMln(const KnowledgeBase& kb);

}  // namespace probkb

#endif  // PROBKB_MLN_PARSER_H_
