#include "mln/parser.h"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace probkb {

namespace {

/// One parsed atom: `rel(arg1[:Class1], arg2[:Class2])`.
struct ParsedAtom {
  std::string relation;
  std::string arg1, cls1;  // cls empty if unannotated
  std::string arg2, cls2;
};

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == '\'';
}

/// Cursor-based scanner over one line.
class LineScanner {
 public:
  LineScanner(std::string_view text, int line_no)
      : text_(text), line_no_(line_no) {}

  void SkipSpace() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t'))
      ++pos_;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> Ident(const char* what) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    if (pos_ == start) {
      return Status::ParseError(
          StrFormat("line %d: expected %s at column %zu", line_no_, what,
                    start + 1));
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<ParsedAtom> Atom() {
    ParsedAtom atom;
    PROBKB_ASSIGN_OR_RETURN(atom.relation, Ident("relation name"));
    if (!Consume('(')) {
      return Status::ParseError(
          StrFormat("line %d: expected '(' after relation '%s'", line_no_,
                    atom.relation.c_str()));
    }
    PROBKB_ASSIGN_OR_RETURN(atom.arg1, Ident("first argument"));
    if (Consume(':')) {
      PROBKB_ASSIGN_OR_RETURN(atom.cls1, Ident("class of first argument"));
    }
    if (!Consume(',')) {
      return Status::ParseError(
          StrFormat("line %d: expected ',' between atom arguments",
                    line_no_));
    }
    PROBKB_ASSIGN_OR_RETURN(atom.arg2, Ident("second argument"));
    if (Consume(':')) {
      PROBKB_ASSIGN_OR_RETURN(atom.cls2, Ident("class of second argument"));
    }
    if (!Consume(')')) {
      return Status::ParseError(
          StrFormat("line %d: expected ')' to close atom", line_no_));
    }
    return atom;
  }

  Result<double> Number(const char* what) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (IsIdentChar(text_[pos_]) || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    if (start == pos_ ||
        !ParseDouble(text_.substr(start, pos_ - start), &value)) {
      return Status::ParseError(
          StrFormat("line %d: expected %s", line_no_, what));
    }
    return value;
  }

  bool ConsumeLiteral(std::string_view lit) {
    SkipSpace();
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  int line_no() const { return line_no_; }

 private:
  std::string_view text_;
  size_t pos_ = 0;
  int line_no_;
};

Status ParseFact(LineScanner* scanner, double weight, KnowledgeBase* kb) {
  PROBKB_ASSIGN_OR_RETURN(ParsedAtom atom, scanner->Atom());
  if (atom.cls1.empty() || atom.cls2.empty()) {
    return Status::ParseError(
        StrFormat("line %d: fact arguments must be annotated entity:Class",
                  scanner->line_no()));
  }
  if (!scanner->AtEnd()) {
    return Status::ParseError(
        StrFormat("line %d: trailing input after fact", scanner->line_no()));
  }
  kb->AddFactByName(atom.relation, atom.arg1, atom.cls1, atom.arg2, atom.cls2,
                    weight);
  return Status::OK();
}

Status ParseRule(LineScanner* scanner, double weight, ParsedAtom head,
                 KnowledgeBase* kb) {
  std::vector<ParsedAtom> body;
  while (true) {
    PROBKB_ASSIGN_OR_RETURN(ParsedAtom atom, scanner->Atom());
    body.push_back(std::move(atom));
    if (!scanner->Consume(',')) break;
  }
  // Optional statistical-significance score after the body.
  double score = weight;
  if (scanner->ConsumeLiteral("score=")) {
    PROBKB_ASSIGN_OR_RETURN(score, scanner->Number("score value"));
  }
  if (!scanner->AtEnd()) {
    return Status::ParseError(
        StrFormat("line %d: trailing input after rule", scanner->line_no()));
  }

  // Assign variable numbers and collect class annotations.
  Clause clause;
  clause.weight = weight;
  std::map<std::string, int> var_ids;
  auto var = [&](const std::string& name, const std::string& cls)
      -> Result<int> {
    auto [it, inserted] =
        var_ids.emplace(name, static_cast<int>(var_ids.size()));
    int id = it->second;
    if (inserted) clause.var_classes.push_back(kInvalidId);
    if (!cls.empty()) {
      ClassId c = kb->classes().GetOrAdd(cls);
      ClassId& slot = clause.var_classes[static_cast<size_t>(id)];
      if (slot != kInvalidId && slot != c) {
        return Status::ParseError(StrFormat(
            "line %d: variable '%s' annotated with conflicting classes",
            scanner->line_no(), name.c_str()));
      }
      slot = c;
    }
    return id;
  };

  auto to_atom = [&](const ParsedAtom& a) -> Result<Atom> {
    Atom atom;
    atom.relation = kb->relations().GetOrAdd(a.relation);
    PROBKB_ASSIGN_OR_RETURN(atom.var1, var(a.arg1, a.cls1));
    PROBKB_ASSIGN_OR_RETURN(atom.var2, var(a.arg2, a.cls2));
    return atom;
  };

  PROBKB_ASSIGN_OR_RETURN(clause.head, to_atom(head));
  for (const ParsedAtom& a : body) {
    PROBKB_ASSIGN_OR_RETURN(Atom atom, to_atom(a));
    clause.body.push_back(atom);
  }
  for (size_t i = 0; i < clause.var_classes.size(); ++i) {
    if (clause.var_classes[i] == kInvalidId) {
      return Status::ParseError(StrFormat(
          "line %d: a variable is never annotated with a class",
          scanner->line_no()));
    }
  }

  auto rule = PartitionClause(clause);
  if (!rule.ok()) {
    return Status::ParseError(StrFormat("line %d: %s", scanner->line_no(),
                                        rule.status().message().c_str()));
  }
  rule->score = score;
  kb->AddRule(*rule);
  return Status::OK();
}

}  // namespace

Result<KnowledgeBase> ParseMln(std::string_view text) {
  KnowledgeBase kb;
  int line_no = 0;
  for (std::string_view raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    // Strip comments.
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '#' ||
          (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/')) {
        line = StripWhitespace(line.substr(0, i));
        break;
      }
    }
    if (line.empty()) continue;

    LineScanner scanner(line, line_no);
    if (scanner.ConsumeLiteral("class ")) {
      PROBKB_ASSIGN_OR_RETURN(std::string name, scanner.Ident("class name"));
      kb.classes().GetOrAdd(name);
      continue;
    }
    if (scanner.ConsumeLiteral("relation ")) {
      PROBKB_ASSIGN_OR_RETURN(ParsedAtom atom, scanner.Atom());
      RelationSignature sig;
      sig.relation = kb.relations().GetOrAdd(atom.relation);
      sig.domain = kb.classes().GetOrAdd(atom.arg1);
      sig.range = kb.classes().GetOrAdd(atom.arg2);
      kb.AddSignature(sig);
      continue;
    }
    if (scanner.ConsumeLiteral("functional ")) {
      PROBKB_ASSIGN_OR_RETURN(std::string rel,
                              scanner.Ident("relation name"));
      PROBKB_ASSIGN_OR_RETURN(double type, scanner.Number("type (1 or 2)"));
      PROBKB_ASSIGN_OR_RETURN(double degree, scanner.Number("degree"));
      if (type != 1 && type != 2) {
        return Status::ParseError(StrFormat(
            "line %d: functionality type must be 1 or 2", line_no));
      }
      if (degree < 1 || degree != std::floor(degree)) {
        return Status::ParseError(StrFormat(
            "line %d: degree must be a positive integer", line_no));
      }
      FunctionalConstraint c;
      c.relation = kb.relations().GetOrAdd(rel);
      c.type = type == 1 ? FunctionalityType::kTypeI
                         : FunctionalityType::kTypeII;
      c.degree = static_cast<int64_t>(degree);
      kb.AddConstraint(c);
      continue;
    }
    if (scanner.ConsumeLiteral("member ")) {
      PROBKB_ASSIGN_OR_RETURN(std::string cls, scanner.Ident("class name"));
      PROBKB_ASSIGN_OR_RETURN(std::string entity,
                              scanner.Ident("entity name"));
      kb.AddClassMember(
          {kb.classes().GetOrAdd(cls), kb.entities().GetOrAdd(entity)});
      continue;
    }

    // Otherwise: "<weight> atom" (fact) or "<weight> atom :- body" (rule).
    PROBKB_ASSIGN_OR_RETURN(double weight, scanner.Number("weight"));
    PROBKB_ASSIGN_OR_RETURN(ParsedAtom head, scanner.Atom());
    if (scanner.ConsumeLiteral(":-")) {
      PROBKB_RETURN_NOT_OK(ParseRule(&scanner, weight, std::move(head), &kb));
    } else {
      LineScanner replay(line, line_no);
      (void)replay.Number("weight");
      PROBKB_RETURN_NOT_OK(ParseFact(&replay, weight, &kb));
    }
  }
  PROBKB_RETURN_NOT_OK(kb.Validate());
  return kb;
}

Result<KnowledgeBase> ParseMlnFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseMln(buffer.str());
}

std::string SerializeMln(const KnowledgeBase& kb) {
  std::ostringstream out;
  for (const std::string& name : kb.classes().names()) {
    out << "class " << name << "\n";
  }
  for (const RelationSignature& sig : kb.signatures()) {
    out << "relation " << kb.relations().NameOrPlaceholder(sig.relation)
        << "(" << kb.classes().NameOrPlaceholder(sig.domain) << ", "
        << kb.classes().NameOrPlaceholder(sig.range) << ")\n";
  }
  for (const ClassMember& m : kb.class_members()) {
    out << "member " << kb.classes().NameOrPlaceholder(m.cls) << " "
        << kb.entities().NameOrPlaceholder(m.entity) << "\n";
  }
  for (const FunctionalConstraint& c : kb.constraints()) {
    out << "functional " << kb.relations().NameOrPlaceholder(c.relation)
        << " " << static_cast<int>(c.type) << " " << c.degree << "\n";
  }
  auto cls = [&](ClassId c) { return kb.classes().NameOrPlaceholder(c); };
  auto rel = [&](RelationId r) { return kb.relations().NameOrPlaceholder(r); };
  for (const Fact& f : kb.facts()) {
    out << StrFormat("%.17g ", f.weight) << rel(f.relation) << "("
        << kb.entities().NameOrPlaceholder(f.x) << ":" << cls(f.c1) << ", "
        << kb.entities().NameOrPlaceholder(f.y) << ":" << cls(f.c2) << ")\n";
  }
  for (const HornRule& r : kb.rules()) {
    Clause clause = RuleToClause(r);
    auto arg = [&](int v, bool annotate) {
      static const char* kVarNames[] = {"x", "y", "z"};
      std::string s = kVarNames[v];
      if (annotate) {
        s += ":";
        s += cls(clause.var_classes[static_cast<size_t>(v)]);
      }
      return s;
    };
    out << StrFormat("%.17g ", r.weight) << rel(clause.head.relation) << "("
        << arg(clause.head.var1, true) << ", " << arg(clause.head.var2, true)
        << ") :- ";
    std::vector<bool> annotated(clause.var_classes.size(), false);
    annotated[static_cast<size_t>(clause.head.var1)] = true;
    annotated[static_cast<size_t>(clause.head.var2)] = true;
    for (size_t i = 0; i < clause.body.size(); ++i) {
      if (i > 0) out << ", ";
      const Atom& a = clause.body[i];
      out << rel(a.relation) << "("
          << arg(a.var1, !annotated[static_cast<size_t>(a.var1)]);
      annotated[static_cast<size_t>(a.var1)] = true;
      out << ", " << arg(a.var2, !annotated[static_cast<size_t>(a.var2)]);
      annotated[static_cast<size_t>(a.var2)] = true;
      out << ")";
    }
    if (r.score != r.weight) out << StrFormat(" score=%.17g", r.score);
    out << "\n";
  }
  return out.str();
}

}  // namespace probkb
