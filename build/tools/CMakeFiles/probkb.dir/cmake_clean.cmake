file(REMOVE_RECURSE
  "CMakeFiles/probkb.dir/probkb_main.cc.o"
  "CMakeFiles/probkb.dir/probkb_main.cc.o.d"
  "probkb"
  "probkb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
