# Empty dependencies file for probkb.
# This may be replaced when dependencies are built.
