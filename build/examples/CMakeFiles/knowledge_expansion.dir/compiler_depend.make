# Empty compiler generated dependencies file for knowledge_expansion.
# This may be replaced when dependencies are built.
