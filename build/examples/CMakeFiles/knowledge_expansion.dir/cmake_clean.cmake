file(REMOVE_RECURSE
  "CMakeFiles/knowledge_expansion.dir/knowledge_expansion.cpp.o"
  "CMakeFiles/knowledge_expansion.dir/knowledge_expansion.cpp.o.d"
  "knowledge_expansion"
  "knowledge_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
