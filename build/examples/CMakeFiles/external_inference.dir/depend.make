# Empty dependencies file for external_inference.
# This may be replaced when dependencies are built.
