file(REMOVE_RECURSE
  "CMakeFiles/external_inference.dir/external_inference.cpp.o"
  "CMakeFiles/external_inference.dir/external_inference.cpp.o.d"
  "external_inference"
  "external_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/external_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
