# Empty dependencies file for mpp_tuning.
# This may be replaced when dependencies are built.
