file(REMOVE_RECURSE
  "CMakeFiles/mpp_tuning.dir/mpp_tuning.cpp.o"
  "CMakeFiles/mpp_tuning.dir/mpp_tuning.cpp.o.d"
  "mpp_tuning"
  "mpp_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpp_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
