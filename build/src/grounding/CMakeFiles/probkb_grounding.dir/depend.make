# Empty dependencies file for probkb_grounding.
# This may be replaced when dependencies are built.
