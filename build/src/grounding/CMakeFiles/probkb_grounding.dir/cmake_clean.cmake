file(REMOVE_RECURSE
  "CMakeFiles/probkb_grounding.dir/grounder.cc.o"
  "CMakeFiles/probkb_grounding.dir/grounder.cc.o.d"
  "CMakeFiles/probkb_grounding.dir/mpp_grounder.cc.o"
  "CMakeFiles/probkb_grounding.dir/mpp_grounder.cc.o.d"
  "CMakeFiles/probkb_grounding.dir/partition_queries.cc.o"
  "CMakeFiles/probkb_grounding.dir/partition_queries.cc.o.d"
  "libprobkb_grounding.a"
  "libprobkb_grounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_grounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
