file(REMOVE_RECURSE
  "libprobkb_grounding.a"
)
