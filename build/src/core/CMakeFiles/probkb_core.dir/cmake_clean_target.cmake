file(REMOVE_RECURSE
  "libprobkb_core.a"
)
