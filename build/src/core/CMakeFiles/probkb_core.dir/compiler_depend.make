# Empty compiler generated dependencies file for probkb_core.
# This may be replaced when dependencies are built.
