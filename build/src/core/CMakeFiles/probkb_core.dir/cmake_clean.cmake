file(REMOVE_RECURSE
  "CMakeFiles/probkb_core.dir/probkb.cc.o"
  "CMakeFiles/probkb_core.dir/probkb.cc.o.d"
  "libprobkb_core.a"
  "libprobkb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
