file(REMOVE_RECURSE
  "CMakeFiles/probkb_quality.dir/error_analysis.cc.o"
  "CMakeFiles/probkb_quality.dir/error_analysis.cc.o.d"
  "CMakeFiles/probkb_quality.dir/rule_cleaning.cc.o"
  "CMakeFiles/probkb_quality.dir/rule_cleaning.cc.o.d"
  "CMakeFiles/probkb_quality.dir/rule_feedback.cc.o"
  "CMakeFiles/probkb_quality.dir/rule_feedback.cc.o.d"
  "libprobkb_quality.a"
  "libprobkb_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
