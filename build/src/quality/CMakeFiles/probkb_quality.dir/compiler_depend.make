# Empty compiler generated dependencies file for probkb_quality.
# This may be replaced when dependencies are built.
