file(REMOVE_RECURSE
  "libprobkb_quality.a"
)
