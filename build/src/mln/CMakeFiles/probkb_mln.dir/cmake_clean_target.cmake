file(REMOVE_RECURSE
  "libprobkb_mln.a"
)
