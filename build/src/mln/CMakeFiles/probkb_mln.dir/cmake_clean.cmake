file(REMOVE_RECURSE
  "CMakeFiles/probkb_mln.dir/parser.cc.o"
  "CMakeFiles/probkb_mln.dir/parser.cc.o.d"
  "libprobkb_mln.a"
  "libprobkb_mln.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_mln.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
