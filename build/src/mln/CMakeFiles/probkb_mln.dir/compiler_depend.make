# Empty compiler generated dependencies file for probkb_mln.
# This may be replaced when dependencies are built.
