# CMake generated Testfile for 
# Source directory: /root/repo/src/mln
# Build directory: /root/repo/build/src/mln
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
