file(REMOVE_RECURSE
  "libprobkb_engine.a"
)
