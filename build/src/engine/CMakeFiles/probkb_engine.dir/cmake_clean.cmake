file(REMOVE_RECURSE
  "CMakeFiles/probkb_engine.dir/exec_context.cc.o"
  "CMakeFiles/probkb_engine.dir/exec_context.cc.o.d"
  "CMakeFiles/probkb_engine.dir/ops.cc.o"
  "CMakeFiles/probkb_engine.dir/ops.cc.o.d"
  "CMakeFiles/probkb_engine.dir/plan.cc.o"
  "CMakeFiles/probkb_engine.dir/plan.cc.o.d"
  "libprobkb_engine.a"
  "libprobkb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
