# Empty dependencies file for probkb_engine.
# This may be replaced when dependencies are built.
