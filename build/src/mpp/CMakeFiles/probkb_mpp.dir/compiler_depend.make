# Empty compiler generated dependencies file for probkb_mpp.
# This may be replaced when dependencies are built.
