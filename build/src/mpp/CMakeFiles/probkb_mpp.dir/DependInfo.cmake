
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpp/cost_model.cc" "src/mpp/CMakeFiles/probkb_mpp.dir/cost_model.cc.o" "gcc" "src/mpp/CMakeFiles/probkb_mpp.dir/cost_model.cc.o.d"
  "/root/repo/src/mpp/distributed_table.cc" "src/mpp/CMakeFiles/probkb_mpp.dir/distributed_table.cc.o" "gcc" "src/mpp/CMakeFiles/probkb_mpp.dir/distributed_table.cc.o.d"
  "/root/repo/src/mpp/distribution.cc" "src/mpp/CMakeFiles/probkb_mpp.dir/distribution.cc.o" "gcc" "src/mpp/CMakeFiles/probkb_mpp.dir/distribution.cc.o.d"
  "/root/repo/src/mpp/mpp_context.cc" "src/mpp/CMakeFiles/probkb_mpp.dir/mpp_context.cc.o" "gcc" "src/mpp/CMakeFiles/probkb_mpp.dir/mpp_context.cc.o.d"
  "/root/repo/src/mpp/mpp_ops.cc" "src/mpp/CMakeFiles/probkb_mpp.dir/mpp_ops.cc.o" "gcc" "src/mpp/CMakeFiles/probkb_mpp.dir/mpp_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/probkb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/probkb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
