file(REMOVE_RECURSE
  "libprobkb_mpp.a"
)
