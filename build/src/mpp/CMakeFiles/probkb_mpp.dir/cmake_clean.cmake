file(REMOVE_RECURSE
  "CMakeFiles/probkb_mpp.dir/cost_model.cc.o"
  "CMakeFiles/probkb_mpp.dir/cost_model.cc.o.d"
  "CMakeFiles/probkb_mpp.dir/distributed_table.cc.o"
  "CMakeFiles/probkb_mpp.dir/distributed_table.cc.o.d"
  "CMakeFiles/probkb_mpp.dir/distribution.cc.o"
  "CMakeFiles/probkb_mpp.dir/distribution.cc.o.d"
  "CMakeFiles/probkb_mpp.dir/mpp_context.cc.o"
  "CMakeFiles/probkb_mpp.dir/mpp_context.cc.o.d"
  "CMakeFiles/probkb_mpp.dir/mpp_ops.cc.o"
  "CMakeFiles/probkb_mpp.dir/mpp_ops.cc.o.d"
  "libprobkb_mpp.a"
  "libprobkb_mpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_mpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
