file(REMOVE_RECURSE
  "libprobkb_tuffy.a"
)
