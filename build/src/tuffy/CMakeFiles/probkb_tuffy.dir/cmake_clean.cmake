file(REMOVE_RECURSE
  "CMakeFiles/probkb_tuffy.dir/tuffy_grounder.cc.o"
  "CMakeFiles/probkb_tuffy.dir/tuffy_grounder.cc.o.d"
  "libprobkb_tuffy.a"
  "libprobkb_tuffy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_tuffy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
