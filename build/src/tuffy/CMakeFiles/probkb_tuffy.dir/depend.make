# Empty dependencies file for probkb_tuffy.
# This may be replaced when dependencies are built.
