file(REMOVE_RECURSE
  "CMakeFiles/probkb_util.dir/logging.cc.o"
  "CMakeFiles/probkb_util.dir/logging.cc.o.d"
  "CMakeFiles/probkb_util.dir/status.cc.o"
  "CMakeFiles/probkb_util.dir/status.cc.o.d"
  "CMakeFiles/probkb_util.dir/strings.cc.o"
  "CMakeFiles/probkb_util.dir/strings.cc.o.d"
  "libprobkb_util.a"
  "libprobkb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
