# Empty dependencies file for probkb_util.
# This may be replaced when dependencies are built.
