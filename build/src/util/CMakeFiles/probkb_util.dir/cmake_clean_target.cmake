file(REMOVE_RECURSE
  "libprobkb_util.a"
)
