
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/class_hierarchy.cc" "src/kb/CMakeFiles/probkb_kb.dir/class_hierarchy.cc.o" "gcc" "src/kb/CMakeFiles/probkb_kb.dir/class_hierarchy.cc.o.d"
  "/root/repo/src/kb/dictionary.cc" "src/kb/CMakeFiles/probkb_kb.dir/dictionary.cc.o" "gcc" "src/kb/CMakeFiles/probkb_kb.dir/dictionary.cc.o.d"
  "/root/repo/src/kb/kb_query.cc" "src/kb/CMakeFiles/probkb_kb.dir/kb_query.cc.o" "gcc" "src/kb/CMakeFiles/probkb_kb.dir/kb_query.cc.o.d"
  "/root/repo/src/kb/knowledge_base.cc" "src/kb/CMakeFiles/probkb_kb.dir/knowledge_base.cc.o" "gcc" "src/kb/CMakeFiles/probkb_kb.dir/knowledge_base.cc.o.d"
  "/root/repo/src/kb/relational_model.cc" "src/kb/CMakeFiles/probkb_kb.dir/relational_model.cc.o" "gcc" "src/kb/CMakeFiles/probkb_kb.dir/relational_model.cc.o.d"
  "/root/repo/src/kb/rule.cc" "src/kb/CMakeFiles/probkb_kb.dir/rule.cc.o" "gcc" "src/kb/CMakeFiles/probkb_kb.dir/rule.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/probkb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
