file(REMOVE_RECURSE
  "libprobkb_kb.a"
)
