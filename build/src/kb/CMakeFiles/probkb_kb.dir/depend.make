# Empty dependencies file for probkb_kb.
# This may be replaced when dependencies are built.
