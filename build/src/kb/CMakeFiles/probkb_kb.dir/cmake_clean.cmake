file(REMOVE_RECURSE
  "CMakeFiles/probkb_kb.dir/class_hierarchy.cc.o"
  "CMakeFiles/probkb_kb.dir/class_hierarchy.cc.o.d"
  "CMakeFiles/probkb_kb.dir/dictionary.cc.o"
  "CMakeFiles/probkb_kb.dir/dictionary.cc.o.d"
  "CMakeFiles/probkb_kb.dir/kb_query.cc.o"
  "CMakeFiles/probkb_kb.dir/kb_query.cc.o.d"
  "CMakeFiles/probkb_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/probkb_kb.dir/knowledge_base.cc.o.d"
  "CMakeFiles/probkb_kb.dir/relational_model.cc.o"
  "CMakeFiles/probkb_kb.dir/relational_model.cc.o.d"
  "CMakeFiles/probkb_kb.dir/rule.cc.o"
  "CMakeFiles/probkb_kb.dir/rule.cc.o.d"
  "libprobkb_kb.a"
  "libprobkb_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
