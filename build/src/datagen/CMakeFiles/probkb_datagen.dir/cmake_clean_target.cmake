file(REMOVE_RECURSE
  "libprobkb_datagen.a"
)
