# Empty compiler generated dependencies file for probkb_datagen.
# This may be replaced when dependencies are built.
