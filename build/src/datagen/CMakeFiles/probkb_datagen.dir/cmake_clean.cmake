file(REMOVE_RECURSE
  "CMakeFiles/probkb_datagen.dir/ground_truth.cc.o"
  "CMakeFiles/probkb_datagen.dir/ground_truth.cc.o.d"
  "CMakeFiles/probkb_datagen.dir/synthetic_kb.cc.o"
  "CMakeFiles/probkb_datagen.dir/synthetic_kb.cc.o.d"
  "libprobkb_datagen.a"
  "libprobkb_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
