# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("relational")
subdirs("engine")
subdirs("mpp")
subdirs("kb")
subdirs("mln")
subdirs("factor")
subdirs("grounding")
subdirs("tuffy")
subdirs("quality")
subdirs("infer")
subdirs("datagen")
subdirs("core")
