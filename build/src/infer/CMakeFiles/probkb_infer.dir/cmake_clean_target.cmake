file(REMOVE_RECURSE
  "libprobkb_infer.a"
)
