# Empty dependencies file for probkb_infer.
# This may be replaced when dependencies are built.
