file(REMOVE_RECURSE
  "CMakeFiles/probkb_infer.dir/gibbs.cc.o"
  "CMakeFiles/probkb_infer.dir/gibbs.cc.o.d"
  "CMakeFiles/probkb_infer.dir/map_inference.cc.o"
  "CMakeFiles/probkb_infer.dir/map_inference.cc.o.d"
  "CMakeFiles/probkb_infer.dir/writeback.cc.o"
  "CMakeFiles/probkb_infer.dir/writeback.cc.o.d"
  "libprobkb_infer.a"
  "libprobkb_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
