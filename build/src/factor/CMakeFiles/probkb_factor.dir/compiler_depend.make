# Empty compiler generated dependencies file for probkb_factor.
# This may be replaced when dependencies are built.
