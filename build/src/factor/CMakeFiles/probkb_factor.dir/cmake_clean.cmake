file(REMOVE_RECURSE
  "CMakeFiles/probkb_factor.dir/factor_graph.cc.o"
  "CMakeFiles/probkb_factor.dir/factor_graph.cc.o.d"
  "libprobkb_factor.a"
  "libprobkb_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
