
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/factor/factor_graph.cc" "src/factor/CMakeFiles/probkb_factor.dir/factor_graph.cc.o" "gcc" "src/factor/CMakeFiles/probkb_factor.dir/factor_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kb/CMakeFiles/probkb_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/probkb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
