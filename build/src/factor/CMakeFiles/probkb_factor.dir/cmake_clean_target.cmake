file(REMOVE_RECURSE
  "libprobkb_factor.a"
)
