file(REMOVE_RECURSE
  "CMakeFiles/probkb_relational.dir/catalog.cc.o"
  "CMakeFiles/probkb_relational.dir/catalog.cc.o.d"
  "CMakeFiles/probkb_relational.dir/schema.cc.o"
  "CMakeFiles/probkb_relational.dir/schema.cc.o.d"
  "CMakeFiles/probkb_relational.dir/table.cc.o"
  "CMakeFiles/probkb_relational.dir/table.cc.o.d"
  "CMakeFiles/probkb_relational.dir/table_io.cc.o"
  "CMakeFiles/probkb_relational.dir/table_io.cc.o.d"
  "CMakeFiles/probkb_relational.dir/value.cc.o"
  "CMakeFiles/probkb_relational.dir/value.cc.o.d"
  "libprobkb_relational.a"
  "libprobkb_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probkb_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
