# Empty compiler generated dependencies file for probkb_relational.
# This may be replaced when dependencies are built.
