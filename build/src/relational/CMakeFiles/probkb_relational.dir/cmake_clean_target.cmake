file(REMOVE_RECURSE
  "libprobkb_relational.a"
)
