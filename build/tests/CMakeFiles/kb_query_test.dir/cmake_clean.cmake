file(REMOVE_RECURSE
  "CMakeFiles/kb_query_test.dir/kb_query_test.cc.o"
  "CMakeFiles/kb_query_test.dir/kb_query_test.cc.o.d"
  "kb_query_test"
  "kb_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
