# Empty dependencies file for kb_query_test.
# This may be replaced when dependencies are built.
