# Empty compiler generated dependencies file for tuffy_test.
# This may be replaced when dependencies are built.
