file(REMOVE_RECURSE
  "CMakeFiles/tuffy_test.dir/tuffy_test.cc.o"
  "CMakeFiles/tuffy_test.dir/tuffy_test.cc.o.d"
  "tuffy_test"
  "tuffy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuffy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
