file(REMOVE_RECURSE
  "CMakeFiles/grounding_test.dir/grounding_test.cc.o"
  "CMakeFiles/grounding_test.dir/grounding_test.cc.o.d"
  "grounding_test"
  "grounding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grounding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
