file(REMOVE_RECURSE
  "CMakeFiles/map_inference_test.dir/map_inference_test.cc.o"
  "CMakeFiles/map_inference_test.dir/map_inference_test.cc.o.d"
  "map_inference_test"
  "map_inference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
