# Empty compiler generated dependencies file for map_inference_test.
# This may be replaced when dependencies are built.
