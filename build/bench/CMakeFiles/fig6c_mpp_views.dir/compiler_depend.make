# Empty compiler generated dependencies file for fig6c_mpp_views.
# This may be replaced when dependencies are built.
