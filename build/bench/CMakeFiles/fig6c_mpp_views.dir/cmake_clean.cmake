file(REMOVE_RECURSE
  "CMakeFiles/fig6c_mpp_views.dir/fig6c_mpp_views.cc.o"
  "CMakeFiles/fig6c_mpp_views.dir/fig6c_mpp_views.cc.o.d"
  "fig6c_mpp_views"
  "fig6c_mpp_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_mpp_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
