# Empty compiler generated dependencies file for fig7a_quality.
# This may be replaced when dependencies are built.
