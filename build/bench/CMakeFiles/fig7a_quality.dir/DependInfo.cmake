
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7a_quality.cc" "bench/CMakeFiles/fig7a_quality.dir/fig7a_quality.cc.o" "gcc" "bench/CMakeFiles/fig7a_quality.dir/fig7a_quality.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/probkb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/probkb_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/tuffy/CMakeFiles/probkb_tuffy.dir/DependInfo.cmake"
  "/root/repo/build/src/grounding/CMakeFiles/probkb_grounding.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/probkb_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/factor/CMakeFiles/probkb_factor.dir/DependInfo.cmake"
  "/root/repo/build/src/mln/CMakeFiles/probkb_mln.dir/DependInfo.cmake"
  "/root/repo/build/src/mpp/CMakeFiles/probkb_mpp.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/probkb_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/probkb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/probkb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/probkb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
