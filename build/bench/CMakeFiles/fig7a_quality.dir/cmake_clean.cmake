file(REMOVE_RECURSE
  "CMakeFiles/fig7a_quality.dir/fig7a_quality.cc.o"
  "CMakeFiles/fig7a_quality.dir/fig7a_quality.cc.o.d"
  "fig7a_quality"
  "fig7a_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
