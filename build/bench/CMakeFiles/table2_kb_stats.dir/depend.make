# Empty dependencies file for table2_kb_stats.
# This may be replaced when dependencies are built.
