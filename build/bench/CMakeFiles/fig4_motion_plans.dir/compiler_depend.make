# Empty compiler generated dependencies file for fig4_motion_plans.
# This may be replaced when dependencies are built.
