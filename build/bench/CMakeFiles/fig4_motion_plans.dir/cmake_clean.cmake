file(REMOVE_RECURSE
  "CMakeFiles/fig4_motion_plans.dir/fig4_motion_plans.cc.o"
  "CMakeFiles/fig4_motion_plans.dir/fig4_motion_plans.cc.o.d"
  "fig4_motion_plans"
  "fig4_motion_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_motion_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
