# Empty dependencies file for fig6b_facts_scaling.
# This may be replaced when dependencies are built.
