file(REMOVE_RECURSE
  "CMakeFiles/fig7b_error_sources.dir/fig7b_error_sources.cc.o"
  "CMakeFiles/fig7b_error_sources.dir/fig7b_error_sources.cc.o.d"
  "fig7b_error_sources"
  "fig7b_error_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_error_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
