# Empty compiler generated dependencies file for fig7b_error_sources.
# This may be replaced when dependencies are built.
