file(REMOVE_RECURSE
  "CMakeFiles/fig6a_rules_scaling.dir/fig6a_rules_scaling.cc.o"
  "CMakeFiles/fig6a_rules_scaling.dir/fig6a_rules_scaling.cc.o.d"
  "fig6a_rules_scaling"
  "fig6a_rules_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_rules_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
