# Empty compiler generated dependencies file for fig6a_rules_scaling.
# This may be replaced when dependencies are built.
