# Empty compiler generated dependencies file for table3_grounding.
# This may be replaced when dependencies are built.
