file(REMOVE_RECURSE
  "CMakeFiles/table3_grounding.dir/table3_grounding.cc.o"
  "CMakeFiles/table3_grounding.dir/table3_grounding.cc.o.d"
  "table3_grounding"
  "table3_grounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_grounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
