# Empty dependencies file for ablation_seminaive.
# This may be replaced when dependencies are built.
