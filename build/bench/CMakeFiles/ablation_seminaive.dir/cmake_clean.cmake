file(REMOVE_RECURSE
  "CMakeFiles/ablation_seminaive.dir/ablation_seminaive.cc.o"
  "CMakeFiles/ablation_seminaive.dir/ablation_seminaive.cc.o.d"
  "ablation_seminaive"
  "ablation_seminaive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seminaive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
