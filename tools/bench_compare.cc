// bench_compare — the bench regression gate.
//
//   bench_compare BASELINE.json CURRENT.json [--threshold FRACTION]
//                 [--memory-threshold FRACTION]
//                 [--shipped-threshold FRACTION] [--out COMPARISON.json]
//
// Diffs a fresh bench_report JSON against a committed baseline
// (bench/baselines/BENCH_parallel.json) and exits non-zero when any
// (workload, thread-count) point got more than `threshold` (default 0.10
// = 10%) slower, disappeared from the current report, or — when both
// reports record the field — a workload's serial peak RSS grew more than
// `memory-threshold` (default 0.15 = 15%) or its shipped interconnect
// bytes grew more than `shipped-threshold` (default 0.10 = 10%; a plan
// choice that ships more data is a regression even when wall-clock hides
// it). CI runs this after bench_report so throughput, memory, and traffic
// regressions fail the build instead of landing silently.
//
// Exit codes: 0 no regression, 1 regression found, 2 usage/parse error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/bench_baseline.h"
#include "util/strings.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare BASELINE.json CURRENT.json "
               "[--threshold FRACTION] [--memory-threshold FRACTION] "
               "[--shipped-threshold FRACTION] [--out FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  std::string out_path;
  double threshold = 0.10;
  double memory_threshold = 0.15;
  double shipped_threshold = 0.10;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threshold") == 0) {
      if (i + 1 >= argc || !probkb::ParseDouble(argv[++i], &threshold) ||
          threshold < 0) {
        std::fprintf(stderr, "--threshold needs a non-negative number\n");
        return Usage();
      }
    } else if (std::strcmp(arg, "--memory-threshold") == 0) {
      if (i + 1 >= argc ||
          !probkb::ParseDouble(argv[++i], &memory_threshold) ||
          memory_threshold < 0) {
        std::fprintf(stderr,
                     "--memory-threshold needs a non-negative number\n");
        return Usage();
      }
    } else if (std::strcmp(arg, "--shipped-threshold") == 0) {
      if (i + 1 >= argc ||
          !probkb::ParseDouble(argv[++i], &shipped_threshold) ||
          shipped_threshold < 0) {
        std::fprintf(stderr,
                     "--shipped-threshold needs a non-negative number\n");
        return Usage();
      }
    } else if (std::strcmp(arg, "--out") == 0) {
      if (i + 1 >= argc) return Usage();
      out_path = argv[++i];
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return Usage();
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      return Usage();
    }
  }
  if (baseline_path.empty() || current_path.empty()) return Usage();

  auto baseline = probkb::ReadBenchReportFile(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 2;
  }
  auto current = probkb::ReadBenchReportFile(current_path);
  if (!current.ok()) {
    std::fprintf(stderr, "%s\n", current.status().ToString().c_str());
    return 2;
  }

  const probkb::BenchComparison comparison = probkb::CompareBenchReports(
      *baseline, *current, threshold, memory_threshold, shipped_threshold);
  std::fputs(comparison.ToText().c_str(), stdout);

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << comparison.ToJson();
  }

  return comparison.has_regression ? 1 : 0;
}
