// probkb — command-line front end for the ProbKB library.
//
//   probkb stats   program.mln
//   probkb ground  program.mln [--iterations N] [--constraints]
//                  [--rule-theta F] [--semi-naive] [--deadline S]
//                  [--max-rows N] [--checkpoint DIR] [--resume]
//                  [--threads N] [--tpi out.tsv] [--tphi out.tsv]
//   probkb infer   program.mln [--sweeps N] [--map] [same grounding flags]
//   probkb explain program.mln --fact 'rel(x, y)'
//
// Grounds an MLN program with the batched algorithm and optionally runs
// marginal (Gibbs) or MAP inference, printing facts with probabilities.
//
// Exit codes: 0 success, 1 error, 2 usage, and — for budget failures that
// end a run early with a partial (checkpointed) expansion — 4 deadline
// exceeded, 5 resource exhausted, 6 cancelled.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "engine/tunables.h"
#include "factor/factor_graph.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "infer/gibbs.h"
#include "infer/map_inference.h"
#include "mln/parser.h"
#include "obs/flight_recorder.h"
#include "obs/stats_registry.h"
#include "quality/rule_cleaning.h"
#include "relational/table_io.h"
#include "runtime/process_runtime.h"
#include "util/logging.h"

namespace {

using namespace probkb;

struct CliOptions {
  std::string command;
  std::string program_path;
  int iterations = 15;
  bool constraints = false;
  bool semi_naive = false;
  double rule_theta = 1.0;
  int sweeps = 2000;
  bool map_inference = false;
  double deadline_seconds = 0.0;
  int64_t max_rows = 0;
  int num_threads = 0;
  int num_segments = 0;
  std::string runtime;
  std::string checkpoint_dir;
  bool resume = false;
  std::string tpi_out;
  std::string tphi_out;
  std::string fact_query;
  bool explain_plans = false;
  bool auto_tune = false;
  std::vector<std::string> tunable_overrides;
  bool stats = false;
  std::string stats_json;
  std::string log_level;
  std::string log_json;
  std::string post_mortem;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: probkb <stats|ground|infer|explain> <program.mln> [flags]\n"
      "  --iterations N    grounding iteration cap (default 15)\n"
      "  --constraints     apply functional constraints each iteration\n"
      "  --semi-naive      semi-naive (delta) evaluation\n"
      "  --rule-theta F    keep the top-F fraction of rules by score\n"
      "  --deadline S      grounding deadline in seconds (exit 4 past it)\n"
      "  --max-rows N      per-statement produced-row cap (exit 5 past it)\n"
      "  --checkpoint DIR  write an iteration checkpoint into DIR\n"
      "  --resume          resume grounding from --checkpoint DIR\n"
      "  --threads N       grounding worker threads (default: all cores;\n"
      "                    1 = serial; output is identical either way)\n"
      "  --segments N      ground on the N-segment MPP engine instead of\n"
      "                    the single-node grounder (ProbKB-p views plan)\n"
      "  --runtime R       sim | process: segment runtime for --segments\n"
      "                    (default sim; env PROBKB_RUNTIME; process forks\n"
      "                    one supervised worker per segment)\n"
      "  --sweeps N        Gibbs sample sweeps (infer; default 2000)\n"
      "  --map             MAP (most likely world) instead of marginals\n"
      "  --tpi FILE        dump the grounded facts table as TSV\n"
      "  --tphi FILE       dump the factor table as TSV\n"
      "  --fact 'r(a, b)'  fact to explain (explain)\n"
      "  --explain         dump the chosen plan trees / motion decisions of\n"
      "                    the last grounding iteration (est vs observed\n"
      "                    cardinalities)\n"
      "  --auto-tune       calibrate execution knobs with a startup\n"
      "                    microbench (cached; see PROBKB_TUNABLES_CACHE)\n"
      "  --tunable K=V     override one execution knob (parallel_min_rows,\n"
      "                    hash_chunk_rows, morsel_rows,\n"
      "                    serial_fanout_row_cutoff, max_build_partitions);\n"
      "                    repeatable, wins over --auto-tune and env\n"
      "  --stats           print an EXPLAIN ANALYZE execution report\n"
      "  --stats_json FILE write the execution stats as JSON\n"
      "  --log_level L     debug|info|warning|error or 0-3 (default info;\n"
      "                    env PROBKB_LOG_LEVEL)\n"
      "  --log_json FILE   mirror log lines into FILE as JSONL\n"
      "                    (env PROBKB_LOG)\n"
      "  --post_mortem FILE  write the flight-recorder timeline as JSON\n"
      "  (set PROBKB_TRACE=FILE for a chrome://tracing span dump)\n");
  return 2;
}

/// Distinct process exit codes per budget-failure kind, so wrapper scripts
/// can tell "ran out of time" from "ran out of memory" from a crash.
int ExitCodeFor(const Status& st) {
  switch (st.code()) {
    case StatusCode::kDeadlineExceeded:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    case StatusCode::kCancelled:
      return 6;
    default:
      return st.ok() ? 0 : 1;
  }
}

// Resolves the execution knobs for this run: calibration (--auto-tune) is
// the base, PROBKB_* env vars refine it, and explicit --tunable K=V flags
// win. False (usage error) on a malformed override.
bool ApplyCliTunables(const CliOptions& options) {
  Tunables tun = options.auto_tune ? AutoTuneTunables() : GetTunables();
  tun = ApplyTunablesEnv(tun);
  for (const std::string& kv : options.tunable_overrides) {
    const size_t eq = kv.find('=');
    const long long value =
        eq == std::string::npos ? 0 : std::atoll(kv.c_str() + eq + 1);
    if (eq == std::string::npos || value <= 0) {
      std::fprintf(stderr,
                   "--tunable wants K=V with a positive integer, got '%s'\n",
                   kv.c_str());
      return false;
    }
    const std::string key = kv.substr(0, eq);
    if (key == "parallel_min_rows") {
      tun.parallel_min_rows = value;
    } else if (key == "hash_chunk_rows") {
      tun.hash_chunk_rows = value;
    } else if (key == "morsel_rows") {
      tun.morsel_rows = value;
    } else if (key == "serial_fanout_row_cutoff") {
      tun.serial_fanout_row_cutoff = value;
    } else if (key == "max_build_partitions") {
      tun.max_build_partitions = static_cast<int>(value);
    } else {
      std::fprintf(stderr, "unknown tunable '%s'\n", key.c_str());
      return false;
    }
  }
  SetTunables(tun);
  return true;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  if (argc < 3) return false;
  options->command = argv[1];
  options->program_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--iterations") {
      const char* v = next();
      if (v == nullptr) return false;
      options->iterations = std::atoi(v);
    } else if (flag == "--constraints") {
      options->constraints = true;
    } else if (flag == "--semi-naive") {
      options->semi_naive = true;
    } else if (flag == "--rule-theta") {
      const char* v = next();
      if (v == nullptr) return false;
      options->rule_theta = std::atof(v);
    } else if (flag == "--deadline") {
      const char* v = next();
      if (v == nullptr) return false;
      options->deadline_seconds = std::atof(v);
    } else if (flag == "--max-rows") {
      const char* v = next();
      if (v == nullptr) return false;
      options->max_rows = std::atoll(v);
    } else if (flag == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return false;
      options->checkpoint_dir = v;
    } else if (flag == "--resume") {
      options->resume = true;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      options->num_threads = std::atoi(v);
      if (options->num_threads <= 0) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        return false;
      }
    } else if (flag == "--segments") {
      const char* v = next();
      if (v == nullptr) return false;
      options->num_segments = std::atoi(v);
      if (options->num_segments <= 0) {
        std::fprintf(stderr, "--segments wants a positive integer\n");
        return false;
      }
    } else if (flag == "--runtime") {
      const char* v = next();
      if (v == nullptr) return false;
      options->runtime = v;
    } else if (flag == "--sweeps") {
      const char* v = next();
      if (v == nullptr) return false;
      options->sweeps = std::atoi(v);
    } else if (flag == "--map") {
      options->map_inference = true;
    } else if (flag == "--tpi") {
      const char* v = next();
      if (v == nullptr) return false;
      options->tpi_out = v;
    } else if (flag == "--tphi") {
      const char* v = next();
      if (v == nullptr) return false;
      options->tphi_out = v;
    } else if (flag == "--fact") {
      const char* v = next();
      if (v == nullptr) return false;
      options->fact_query = v;
    } else if (flag == "--explain") {
      options->explain_plans = true;
    } else if (flag == "--auto-tune") {
      options->auto_tune = true;
    } else if (flag == "--tunable") {
      const char* v = next();
      if (v == nullptr) return false;
      options->tunable_overrides.push_back(v);
    } else if (flag == "--stats") {
      options->stats = true;
    } else if (flag == "--stats_json") {
      const char* v = next();
      if (v == nullptr) return false;
      options->stats_json = v;
    } else if (flag == "--log_level") {
      const char* v = next();
      if (v == nullptr) return false;
      options->log_level = v;
    } else if (flag == "--log_json") {
      const char* v = next();
      if (v == nullptr) return false;
      options->log_json = v;
    } else if (flag == "--post_mortem") {
      const char* v = next();
      if (v == nullptr) return false;
      options->post_mortem = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

std::string DescribeFact(const KnowledgeBase& kb, const RelationalKB& rkb,
                         FactId id) {
  for (int64_t j = 0; j < rkb.t_pi->NumRows(); ++j) {
    if (rkb.t_pi->row(j)[tpi::kI].i64() == id) {
      return kb.FactToString(FactFromRow(rkb.t_pi->row(j)));
    }
  }
  return "?";
}

int Run(const CliOptions& options) {
  auto kb = ParseMlnFile(options.program_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }
  if (options.command == "stats") {
    std::printf("%s\n", kb->StatsString().c_str());
    return 0;
  }

  if (options.rule_theta < 1.0) {
    *kb->mutable_rules() = TopThetaRules(kb->rules(), options.rule_theta);
    std::printf("rule cleaning kept %zu rules\n", kb->rules().size());
  }

  RelationalKB rkb = BuildRelationalModel(*kb);
  GroundingOptions grounding;
  grounding.max_iterations = options.iterations;
  grounding.apply_constraints_each_iteration = options.constraints;
  grounding.evaluation = options.semi_naive ? EvaluationMode::kSemiNaive
                                            : EvaluationMode::kNaive;
  grounding.deadline_seconds = options.deadline_seconds;
  grounding.max_rows_per_statement = options.max_rows;
  grounding.checkpoint_dir = options.checkpoint_dir;
  grounding.num_threads = options.num_threads;

  // One registry per run collects operator/motion/partition stats; it is
  // only attached (and thus only fed) when some output was requested, so
  // the default path keeps its zero-instrumentation behavior.
  StatsRegistry registry;
  const bool want_stats = options.stats || !options.stats_json.empty() ||
                          registry.trace_enabled();
  auto emit_stats = [&]() -> int {
    if (!want_stats) return 0;
    if (options.stats) std::printf("%s", registry.ToText().c_str());
    if (!options.stats_json.empty()) {
      if (auto st = registry.WriteJsonFile(options.stats_json); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", options.stats_json.c_str());
    }
    if (auto st = registry.WriteTraceIfEnabled(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  };

  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint DIR\n");
    return 2;
  }

  // Budget failures degrade to a partial expansion: counters below say
  // which stage gave up, the dumps still happen, and the exit code tells
  // callers why the run stopped short.
  bool partial = false;
  std::string explain_text;
  Status stop_reason;
  int grounding_failures = 0;
  int factor_failures = 0;
  int iterations = 0;
  TablePtr t_phi = Table::Make(TPhiSchema());
  auto absorb_budget_failure = [&](const Status& st, int* failures) -> bool {
    if (!IsBudgetFailure(st.code())) return false;
    partial = true;
    stop_reason = st;
    ++*failures;
    return true;
  };

  if (options.num_segments > 0) {
    // MPP path: ground on the shared-nothing engine (ProbKB-p views plan)
    // and gather TPi back so the downstream stages see the same tables the
    // single-node grounder would produce. --runtime=process additionally
    // ships every motion through forked, supervised worker processes; if
    // the workers cannot spawn the run degrades to the in-process
    // simulator rather than failing.
    MppGrounder mpp(rkb, options.num_segments, MppMode::kViews, grounding);
    if (want_stats) mpp.set_stats_registry(&registry);
    std::unique_ptr<ProcessRuntime> runtime;
    if (ResolveRuntimeKind(options.runtime.empty()
                               ? nullptr
                               : options.runtime.c_str()) ==
        RuntimeKind::kProcess) {
      ProcessRuntimeOptions runtime_options;
      runtime_options.num_segments = options.num_segments;
      runtime = std::make_unique<ProcessRuntime>(runtime_options);
      if (auto st = runtime->Spawn(); !st.ok()) {
        PROBKB_SLOG(Runtime, Warning)
            << "process runtime unavailable ("
            << st.ToString() << "); degrading to the simulator";
        runtime.reset();
      } else {
        mpp.AttachRuntime(runtime.get());
      }
    }
    if (options.resume && GroundingCheckpointExists(options.checkpoint_dir)) {
      if (auto st = mpp.ResumeFrom(options.checkpoint_dir); !st.ok()) {
        std::fprintf(stderr, "resume: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("resumed from %s at iteration %d\n",
                  options.checkpoint_dir.c_str(), mpp.stats().iterations);
    }
    if (auto st = mpp.GroundAtoms();
        !st.ok() && !absorb_budget_failure(st, &grounding_failures)) {
      std::fprintf(stderr, "grounding: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!partial) {
      auto factors = mpp.GroundFactors();
      if (factors.ok()) {
        t_phi = factors.MoveValueOrDie();
      } else if (!absorb_budget_failure(factors.status(),
                                        &factor_failures)) {
        std::fprintf(stderr, "%s\n", factors.status().ToString().c_str());
        return 1;
      }
    }
    rkb.t_pi = mpp.GatherTPi();
    iterations = mpp.stats().iterations;
    if (options.explain_plans) explain_text = mpp.ExplainPlans();
    if (runtime != nullptr) {
      runtime->Shutdown();
      if (want_stats) {
        std::printf("%s\n", runtime->stats().ToString().c_str());
      }
    }
  } else {
    Grounder grounder(&rkb, grounding);
    if (want_stats) grounder.set_stats_registry(&registry);
    if (options.resume && GroundingCheckpointExists(options.checkpoint_dir)) {
      if (auto st = grounder.ResumeFrom(options.checkpoint_dir); !st.ok()) {
        std::fprintf(stderr, "resume: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("resumed from %s at iteration %d\n",
                  options.checkpoint_dir.c_str(),
                  grounder.stats().iterations);
    }
    if (auto st = grounder.GroundAtoms();
        !st.ok() && !absorb_budget_failure(st, &grounding_failures)) {
      std::fprintf(stderr, "grounding: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!partial) {
      auto factors = grounder.GroundFactors();
      if (factors.ok()) {
        t_phi = factors.MoveValueOrDie();
      } else if (!absorb_budget_failure(factors.status(),
                                        &factor_failures)) {
        std::fprintf(stderr, "%s\n", factors.status().ToString().c_str());
        return 1;
      }
    }
    iterations = grounder.stats().iterations;
    if (options.explain_plans) explain_text = grounder.ExplainPlans();
  }
  std::printf("grounded: %lld atoms, %lld factors, %d iterations%s\n",
              static_cast<long long>(rkb.t_pi->NumRows()),
              static_cast<long long>(t_phi->NumRows()),
              iterations, partial ? " (partial)" : "");
  if (options.explain_plans) std::printf("%s", explain_text.c_str());
  if (partial) {
    std::printf("partial expansion: %s\n",
                stop_reason.ToString().c_str());
    std::printf("stage failures: grounding %d, factor grounding %d\n",
                grounding_failures, factor_failures);
  }

  if (!options.tpi_out.empty()) {
    if (auto st = WriteTableTsvFile(*rkb.t_pi, options.tpi_out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.tpi_out.c_str());
  }
  if (!options.tphi_out.empty()) {
    if (auto st = WriteTableTsvFile(*t_phi, options.tphi_out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.tphi_out.c_str());
  }
  if (partial) {
    emit_stats();
    return ExitCodeFor(stop_reason);
  }
  if (options.command == "ground") return emit_stats();

  auto graph = FactorGraph::FromTables(*rkb.t_pi, *t_phi);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  if (options.command == "explain") {
    if (options.fact_query.empty()) {
      std::fprintf(stderr, "explain requires --fact 'relation(x, y)'\n");
      return 2;
    }
    for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
      std::string rendered =
          kb->FactToString(FactFromRow(rkb.t_pi->row(i)));
      if (rendered.find(options.fact_query) == std::string::npos) continue;
      int32_t v = graph->VariableOf(rkb.t_pi->row(i)[tpi::kI].i64());
      std::printf("%s\n",
                  graph
                      ->ExplainLineage(v, 6,
                                       [&](FactId id) {
                                         return DescribeFact(*kb, rkb, id);
                                       })
                      .c_str());
      return emit_stats();
    }
    std::fprintf(stderr, "no fact matching '%s'\n",
                 options.fact_query.c_str());
    return 1;
  }

  if (options.command != "infer") return Usage();
  if (options.map_inference) {
    auto map = IcmMap(*graph);
    if (!map.ok()) {
      std::fprintf(stderr, "%s\n", map.status().ToString().c_str());
      return 1;
    }
    std::printf("MAP log-score %.3f\n", map->log_score);
    for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
      int32_t v = graph->VariableOf(rkb.t_pi->row(i)[tpi::kI].i64());
      std::printf("  %d  %s\n",
                  map->assignment[static_cast<size_t>(v)],
                  kb->FactToString(FactFromRow(rkb.t_pi->row(i))).c_str());
    }
    return emit_stats();
  }
  GibbsOptions gibbs;
  gibbs.schedule = GibbsSchedule::kChromatic;
  gibbs.sample_sweeps = options.sweeps;
  // The sampler now reports its own chains (and a per-sweep latency
  // histogram) straight into the registry.
  if (want_stats) gibbs.stats = &registry;
  auto result = GibbsMarginals(*graph, gibbs);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return ExitCodeFor(result.status());
  }
  for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
    int32_t v = graph->VariableOf(rkb.t_pi->row(i)[tpi::kI].i64());
    std::printf("  P=%.3f  %s\n",
                result->marginals[static_cast<size_t>(v)],
                kb->FactToString(FactFromRow(rkb.t_pi->row(i))).c_str());
  }
  return emit_stats();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage();
  if (options.command != "stats" && options.command != "ground" &&
      options.command != "infer" && options.command != "explain") {
    return Usage();
  }
  SetLogLevel(ResolveLogLevel(
      options.log_level.empty() ? nullptr : options.log_level.c_str()));
  if (auto st = ResolveJsonLogSink(
          options.log_json.empty() ? nullptr : options.log_json.c_str());
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  if (!ApplyCliTunables(options)) return 2;

  const int code = Run(options);

  // Flight-recorder post-mortem: the merged event timeline goes to stderr
  // whenever the pipeline exits non-OK (usage errors excluded — nothing
  // ran), and to --post_mortem FILE as JSON whenever one was requested.
  constexpr size_t kPostMortemEvents = 256;
  FlightRecorder* recorder = FlightRecorder::Global();
  if (code != 0 && code != 2) {
    std::fputs(recorder->DumpText(kPostMortemEvents).c_str(), stderr);
  }
  if (!options.post_mortem.empty()) {
    if (auto st = recorder->WriteDump(options.post_mortem); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return code != 0 ? code : 1;
    }
    std::printf("wrote %s\n", options.post_mortem.c_str());
  }
  return code;
}
