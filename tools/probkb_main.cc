// probkb — command-line front end for the ProbKB library.
//
//   probkb stats   program.mln
//   probkb ground  program.mln [--iterations N] [--constraints]
//                  [--rule-theta F] [--semi-naive] [--deadline S]
//                  [--max-rows N] [--checkpoint DIR] [--resume]
//                  [--threads N] [--mem-budget SIZE] [--spill-dir DIR]
//                  [--tpi out.tsv] [--tphi out.tsv]
//   probkb infer   program.mln [--sweeps N] [--map] [same grounding flags]
//   probkb explain program.mln --fact 'rel(x, y)'
//   probkb serve   program.mln --query 'rel(x, y)' [--query ...]
//                  [--serve-depth N] [--serve-max-atoms N] [--topk K]
//                  [--readers N] [--verify-batch] [--tolerance F]
//
// Grounds an MLN program with the batched algorithm and optionally runs
// marginal (Gibbs) or MAP inference, printing facts with probabilities.
// `serve` instead answers the queries on demand while a background thread
// expands the KB, publishing each fixpoint iteration as a new snapshot
// epoch; queries ground only their local proof neighborhood.
//
// Exit codes: 0 success, 1 error, 2 usage, and — for budget failures that
// end a run early with a partial (checkpointed) expansion — 4 deadline
// exceeded, 5 resource exhausted, 6 cancelled.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/tunables.h"
#include "factor/factor_graph.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "infer/gibbs.h"
#include "infer/map_inference.h"
#include "mln/parser.h"
#include "obs/flight_recorder.h"
#include "obs/stats_registry.h"
#include "obs/trace.h"
#include "quality/rule_cleaning.h"
#include "relational/table_io.h"
#include "runtime/process_runtime.h"
#include "serve/metrics_endpoint.h"
#include "serve/query_server.h"
#include "util/logging.h"
#include "util/mem_budget.h"
#include "util/strings.h"

namespace {

using namespace probkb;

struct CliOptions {
  std::string command;
  std::string program_path;
  int iterations = 15;
  bool constraints = false;
  bool semi_naive = false;
  double rule_theta = 1.0;
  int sweeps = 2000;
  bool map_inference = false;
  double deadline_seconds = 0.0;
  int64_t max_rows = 0;
  int num_threads = 0;
  int num_segments = 0;
  std::string runtime;
  std::string checkpoint_dir;
  bool resume = false;
  int64_t mem_budget = -1;  // -1 inherits Tunables; 0 disables spilling
  std::string spill_dir;
  std::string tpi_out;
  std::string tphi_out;
  std::string fact_query;
  bool explain_plans = false;
  bool auto_tune = false;
  std::vector<std::string> tunable_overrides;
  bool stats = false;
  std::string stats_json;
  std::string log_level;
  std::string log_json;
  std::string post_mortem;
  std::string trace_jsonl;
  std::string trace_chrome;
  // serve
  std::string metrics_socket;
  double metrics_linger = 0.0;
  std::vector<std::string> queries;
  int serve_depth = 3;
  int64_t serve_max_atoms = 65536;
  int topk = 10;
  int readers = 2;
  bool verify_batch = false;
  double tolerance = 0.05;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: probkb <stats|ground|infer|explain|serve> <program.mln> "
      "[flags]\n"
      "  --iterations N    grounding iteration cap (default 15)\n"
      "  --constraints     apply functional constraints each iteration\n"
      "  --semi-naive      semi-naive (delta) evaluation\n"
      "  --rule-theta F    keep the top-F fraction of rules by score\n"
      "  --deadline S      grounding deadline in seconds (exit 4 past it)\n"
      "  --max-rows N      per-statement produced-row cap (exit 5 past it)\n"
      "  --checkpoint DIR  write an iteration checkpoint into DIR\n"
      "  --resume          resume grounding from --checkpoint DIR\n"
      "  --threads N       grounding worker threads (default: all cores;\n"
      "                    1 = serial; output is identical either way)\n"
      "  --mem-budget SIZE out-of-core memory budget for grounding joins\n"
      "                    (e.g. 256M, 2G; 0 = in-memory only; default\n"
      "                    env PROBKB_MEM_BUDGET). Over-budget joins run\n"
      "                    grace-hash with disk spill; output is\n"
      "                    bit-identical either way\n"
      "  --spill-dir DIR   spill-file directory (default: a per-process\n"
      "                    directory under the system temp dir)\n"
      "  --segments N      ground on the N-segment MPP engine instead of\n"
      "                    the single-node grounder (ProbKB-p views plan)\n"
      "  --runtime R       sim | process: segment runtime for --segments\n"
      "                    (default sim; env PROBKB_RUNTIME; process forks\n"
      "                    one supervised worker per segment)\n"
      "  --sweeps N        Gibbs sample sweeps (infer; default 2000)\n"
      "  --map             MAP (most likely world) instead of marginals\n"
      "  --tpi FILE        dump the grounded facts table as TSV\n"
      "  --tphi FILE       dump the factor table as TSV\n"
      "  --fact 'r(a, b)'  fact to explain (explain)\n"
      "  --explain         dump the chosen plan trees / motion decisions of\n"
      "                    the last grounding iteration (est vs observed\n"
      "                    cardinalities)\n"
      "  --auto-tune       calibrate execution knobs with a startup\n"
      "                    microbench (cached; see PROBKB_TUNABLES_CACHE)\n"
      "  --tunable K=V     override one execution knob (parallel_min_rows,\n"
      "                    hash_chunk_rows, morsel_rows,\n"
      "                    serial_fanout_row_cutoff, max_build_partitions);\n"
      "                    repeatable, wins over --auto-tune and env\n"
      "  --stats           print an EXPLAIN ANALYZE execution report\n"
      "  --stats_json FILE write the execution stats as JSON\n"
      "  --log_level L     debug|info|warning|error or 0-3 (default info;\n"
      "                    env PROBKB_LOG_LEVEL)\n"
      "  --log_json FILE   mirror log lines into FILE as JSONL\n"
      "                    (env PROBKB_LOG)\n"
      "  --post_mortem FILE  write the flight-recorder timeline as JSON\n"
      "  --trace FILE      write distributed-trace spans as JSONL\n"
      "  --trace_chrome FILE  write the spans as chrome://tracing JSON\n"
      "  --metrics-socket PATH  serve: Prometheus-format telemetry over a\n"
      "                    Unix socket (poll it with probkb_top)\n"
      "  --metrics-linger S  serve: keep the metrics socket up S seconds\n"
      "                    after serving finishes (default 0)\n"
      "  --query 'r(a, b)'   serve: query to answer (* wildcards, or a bare\n"
      "                    entity name; repeatable)\n"
      "  --serve-depth N   serve: backward-chaining depth bound (default 3)\n"
      "  --serve-max-atoms N  serve: per-query grounded-atom cap\n"
      "  --topk K          serve: answers reported per query (default 10)\n"
      "  --readers N       serve: concurrent reader threads for the final\n"
      "                    bit-identity check (default 2)\n"
      "  --verify-batch    serve: cross-check answers against full batch\n"
      "                    grounding + inference at the same epoch\n"
      "  --tolerance F     serve: max |serve - batch| marginal difference\n"
      "                    allowed by --verify-batch (default 0.05)\n"
      "  (set PROBKB_TRACE=FILE for a chrome://tracing span dump)\n");
  return 2;
}

// Every flag (or env var) that names an output file, so duplicate paths
// can be rejected up front. Without this, --post_mortem and PROBKB_TRACE
// pointed at the same file would each open it independently and silently
// interleave / clobber each other's JSON.
bool CheckOutputPathCollisions(const CliOptions& options) {
  std::vector<std::pair<const char*, std::string>> outputs = {
      {"--tpi", options.tpi_out},
      {"--tphi", options.tphi_out},
      {"--stats_json", options.stats_json},
      {"--log_json", options.log_json},
      {"--post_mortem", options.post_mortem},
      {"--trace", options.trace_jsonl},
      {"--trace_chrome", options.trace_chrome},
  };
  const char* env_trace = std::getenv("PROBKB_TRACE");
  if (env_trace != nullptr && env_trace[0] != '\0') {
    outputs.emplace_back("PROBKB_TRACE", env_trace);
  }
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].second.empty()) continue;
    for (size_t j = i + 1; j < outputs.size(); ++j) {
      if (outputs[i].second != outputs[j].second) continue;
      std::fprintf(stderr,
                   "%s and %s both write to '%s'; their outputs would "
                   "interleave — give each a distinct path\n",
                   outputs[i].first, outputs[j].first,
                   outputs[i].second.c_str());
      return false;
    }
  }
  return true;
}

/// Distinct process exit codes per budget-failure kind, so wrapper scripts
/// can tell "ran out of time" from "ran out of memory" from a crash.
int ExitCodeFor(const Status& st) {
  switch (st.code()) {
    case StatusCode::kDeadlineExceeded:
      return 4;
    case StatusCode::kResourceExhausted:
      return 5;
    case StatusCode::kCancelled:
      return 6;
    default:
      return st.ok() ? 0 : 1;
  }
}

// Resolves the execution knobs for this run: calibration (--auto-tune) is
// the base, PROBKB_* env vars refine it, and explicit --tunable K=V flags
// win. False (usage error) on a malformed override.
bool ApplyCliTunables(const CliOptions& options) {
  Tunables tun = options.auto_tune ? AutoTuneTunables() : GetTunables();
  tun = ApplyTunablesEnv(tun);
  for (const std::string& kv : options.tunable_overrides) {
    const size_t eq = kv.find('=');
    const long long value =
        eq == std::string::npos ? 0 : std::atoll(kv.c_str() + eq + 1);
    if (eq == std::string::npos || value <= 0) {
      std::fprintf(stderr,
                   "--tunable wants K=V with a positive integer, got '%s'\n",
                   kv.c_str());
      return false;
    }
    const std::string key = kv.substr(0, eq);
    if (key == "parallel_min_rows") {
      tun.parallel_min_rows = value;
    } else if (key == "hash_chunk_rows") {
      tun.hash_chunk_rows = value;
    } else if (key == "morsel_rows") {
      tun.morsel_rows = value;
    } else if (key == "serial_fanout_row_cutoff") {
      tun.serial_fanout_row_cutoff = value;
    } else if (key == "max_build_partitions") {
      tun.max_build_partitions = static_cast<int>(value);
    } else {
      std::fprintf(stderr, "unknown tunable '%s'\n", key.c_str());
      return false;
    }
  }
  SetTunables(tun);
  return true;
}

// Hardened numeric-flag intake: garbage falls back to the default,
// out-of-range values clamp to the nearer bound, both with a stderr
// warning — a typo'd knob must not crash the server or run unbounded
// (same policy ResolveThreads applies to env vars).
int64_t FlagInt64(const char* flag, const char* text, int64_t fallback,
                  int64_t lo, int64_t hi) {
  BoundedInt64 parsed = ParseBoundedInt64(text, fallback, lo, hi);
  if (parsed.malformed) {
    std::fprintf(stderr, "%s: unparseable value '%s'; using %lld\n", flag,
                 text, static_cast<long long>(parsed.value));
  } else if (parsed.clamped) {
    std::fprintf(stderr,
                 "%s: value '%s' outside [%lld, %lld]; clamped to %lld\n",
                 flag, text, static_cast<long long>(lo),
                 static_cast<long long>(hi),
                 static_cast<long long>(parsed.value));
  }
  return parsed.value;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  if (argc < 3) return false;
  options->command = argv[1];
  options->program_path = argv[2];
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--iterations") {
      const char* v = next();
      if (v == nullptr) return false;
      options->iterations = std::atoi(v);
    } else if (flag == "--constraints") {
      options->constraints = true;
    } else if (flag == "--semi-naive") {
      options->semi_naive = true;
    } else if (flag == "--rule-theta") {
      const char* v = next();
      if (v == nullptr) return false;
      options->rule_theta = std::atof(v);
    } else if (flag == "--deadline") {
      const char* v = next();
      if (v == nullptr) return false;
      options->deadline_seconds = std::atof(v);
    } else if (flag == "--max-rows") {
      const char* v = next();
      if (v == nullptr) return false;
      options->max_rows = std::atoll(v);
    } else if (flag == "--checkpoint") {
      const char* v = next();
      if (v == nullptr) return false;
      options->checkpoint_dir = v;
    } else if (flag == "--resume") {
      options->resume = true;
    } else if (flag == "--mem-budget") {
      const char* v = next();
      if (v == nullptr) return false;
      auto bytes = probkb::ParseByteSize(v);
      if (!bytes.ok() || *bytes < 0) {
        std::fprintf(stderr,
                     "--mem-budget wants a byte size like 512M or 2G\n");
        return false;
      }
      options->mem_budget = *bytes;
    } else if (flag == "--spill-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      options->spill_dir = v;
    } else if (flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      options->num_threads = std::atoi(v);
      if (options->num_threads <= 0) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        return false;
      }
    } else if (flag == "--segments") {
      const char* v = next();
      if (v == nullptr) return false;
      options->num_segments = std::atoi(v);
      if (options->num_segments <= 0) {
        std::fprintf(stderr, "--segments wants a positive integer\n");
        return false;
      }
    } else if (flag == "--runtime") {
      const char* v = next();
      if (v == nullptr) return false;
      options->runtime = v;
    } else if (flag == "--sweeps") {
      const char* v = next();
      if (v == nullptr) return false;
      options->sweeps = std::atoi(v);
    } else if (flag == "--map") {
      options->map_inference = true;
    } else if (flag == "--tpi") {
      const char* v = next();
      if (v == nullptr) return false;
      options->tpi_out = v;
    } else if (flag == "--tphi") {
      const char* v = next();
      if (v == nullptr) return false;
      options->tphi_out = v;
    } else if (flag == "--fact") {
      const char* v = next();
      if (v == nullptr) return false;
      options->fact_query = v;
    } else if (flag == "--explain") {
      options->explain_plans = true;
    } else if (flag == "--auto-tune") {
      options->auto_tune = true;
    } else if (flag == "--tunable") {
      const char* v = next();
      if (v == nullptr) return false;
      options->tunable_overrides.push_back(v);
    } else if (flag == "--stats") {
      options->stats = true;
    } else if (flag == "--stats_json") {
      const char* v = next();
      if (v == nullptr) return false;
      options->stats_json = v;
    } else if (flag == "--log_level") {
      const char* v = next();
      if (v == nullptr) return false;
      options->log_level = v;
    } else if (flag == "--log_json") {
      const char* v = next();
      if (v == nullptr) return false;
      options->log_json = v;
    } else if (flag == "--post_mortem") {
      const char* v = next();
      if (v == nullptr) return false;
      options->post_mortem = v;
    } else if (flag == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      options->trace_jsonl = v;
    } else if (flag == "--trace_chrome") {
      const char* v = next();
      if (v == nullptr) return false;
      options->trace_chrome = v;
    } else if (flag == "--metrics-socket") {
      const char* v = next();
      if (v == nullptr) return false;
      options->metrics_socket = v;
    } else if (flag == "--metrics-linger") {
      const char* v = next();
      if (v == nullptr) return false;
      options->metrics_linger = std::atof(v);
    } else if (flag == "--query") {
      const char* v = next();
      if (v == nullptr) return false;
      options->queries.push_back(v);
    } else if (flag == "--serve-depth") {
      const char* v = next();
      if (v == nullptr) return false;
      options->serve_depth = static_cast<int>(
          FlagInt64("--serve-depth", v, 3, 0, 64));
    } else if (flag == "--serve-max-atoms") {
      const char* v = next();
      if (v == nullptr) return false;
      options->serve_max_atoms =
          FlagInt64("--serve-max-atoms", v, 65536, 0, int64_t{1} << 40);
    } else if (flag == "--topk") {
      const char* v = next();
      if (v == nullptr) return false;
      options->topk =
          static_cast<int>(FlagInt64("--topk", v, 10, 0, 1000000));
    } else if (flag == "--readers") {
      const char* v = next();
      if (v == nullptr) return false;
      options->readers =
          static_cast<int>(FlagInt64("--readers", v, 2, 1, 256));
    } else if (flag == "--verify-batch") {
      options->verify_batch = true;
    } else if (flag == "--tolerance") {
      const char* v = next();
      if (v == nullptr) return false;
      double parsed = 0.0;
      if (!ParseDouble(v, &parsed)) {
        std::fprintf(stderr,
                     "--tolerance: unparseable value '%s'; using 0.05\n", v);
        parsed = 0.05;
      } else if (parsed < 0.0 || parsed > 1.0) {
        double clamped = parsed < 0.0 ? 0.0 : 1.0;
        std::fprintf(stderr,
                     "--tolerance: value '%s' outside [0, 1]; clamped to "
                     "%.2f\n",
                     v, clamped);
        parsed = clamped;
      }
      options->tolerance = parsed;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

std::string DescribeFact(const KnowledgeBase& kb, const RelationalKB& rkb,
                         FactId id) {
  for (int64_t j = 0; j < rkb.t_pi->NumRows(); ++j) {
    if (rkb.t_pi->row(j)[tpi::kI].i64() == id) {
      return kb.FactToString(FactFromRow(rkb.t_pi->row(j)));
    }
  }
  return "?";
}

// On-demand serving: publish the base KB as epoch 0, expand in a
// background writer thread that publishes a snapshot epoch per fixpoint
// iteration, and answer the --query list live against whatever epoch is
// newest. After expansion, --readers concurrent threads re-answer at one
// pinned epoch and must agree bit-for-bit; --verify-batch additionally
// cross-checks against full-KB grounding + inference at that same epoch.
int RunServe(const CliOptions& options, const KnowledgeBase& kb,
             RelationalKB* rkb, const GroundingOptions& grounding) {
  if (options.queries.empty()) {
    std::fprintf(stderr, "serve requires at least one --query 'rel(x, y)'\n");
    return 2;
  }
  std::vector<QueryPattern> patterns;
  for (const std::string& q : options.queries) {
    auto pattern = ParseQueryPattern(q);
    if (!pattern.ok()) {
      std::fprintf(stderr, "--query %s\n",
                   pattern.status().ToString().c_str());
      return 2;
    }
    patterns.push_back(*pattern);
  }

  ServeOptions serve;
  serve.grounding.max_depth = options.serve_depth;
  serve.grounding.max_atoms = options.serve_max_atoms;
  serve.top_k = options.topk;
  serve.inference.gibbs.schedule = GibbsSchedule::kChromatic;
  serve.inference.gibbs.sample_sweeps = options.sweeps;
  QueryServer server(&kb, rkb->next_fact_id, serve);
  if (auto epoch = server.PublishEpoch(*rkb); !epoch.ok()) {
    std::fprintf(stderr, "%s\n", epoch.status().ToString().c_str());
    return 1;
  }

  // Live telemetry: Prometheus-format stats over a Unix socket for the
  // whole serve run (and --metrics-linger seconds past it, so external
  // pollers like probkb_top or a CI smoke job can catch the final totals).
  std::unique_ptr<MetricsEndpoint> metrics;
  if (!options.metrics_socket.empty()) {
    metrics =
        std::make_unique<MetricsEndpoint>(&server, options.metrics_socket);
    if (auto st = metrics->Start(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  const bool use_mpp = options.num_segments > 0;
  std::unique_ptr<Grounder> grounder;
  std::unique_ptr<MppGrounder> mpp;
  std::unique_ptr<ProcessRuntime> runtime;
  if (use_mpp) {
    mpp = std::make_unique<MppGrounder>(*rkb, options.num_segments,
                                        MppMode::kViews, grounding);
    if (ResolveRuntimeKind(options.runtime.empty()
                               ? nullptr
                               : options.runtime.c_str()) ==
        RuntimeKind::kProcess) {
      ProcessRuntimeOptions runtime_options;
      runtime_options.num_segments = options.num_segments;
      runtime = std::make_unique<ProcessRuntime>(runtime_options);
      if (auto st = runtime->Spawn(); !st.ok()) {
        PROBKB_SLOG(Runtime, Warning)
            << "process runtime unavailable (" << st.ToString()
            << "); degrading to the simulator";
        runtime.reset();
      } else {
        mpp->AttachRuntime(runtime.get());
      }
    }
  } else {
    grounder = std::make_unique<Grounder>(rkb, grounding);
  }

  // Writer thread: one fixpoint iteration, gather (MPP), publish, repeat.
  // `writer_status` is only written before `done` flips and only read
  // after join — no lock needed.
  std::atomic<bool> done{false};
  Status writer_status;
  std::thread writer([&] {
    while (true) {
      Result<int64_t> added = use_mpp ? mpp->GroundAtomsIteration()
                                      : grounder->GroundAtomsIteration();
      if (!added.ok()) {
        writer_status = added.status();
        break;
      }
      if (use_mpp) rkb->t_pi = mpp->GatherTPi();
      if (auto epoch = server.PublishEpoch(*rkb); !epoch.ok()) {
        writer_status = epoch.status();
        break;
      }
      const int iterations =
          use_mpp ? mpp->stats().iterations : grounder->stats().iterations;
      if (*added == 0 || iterations >= options.iterations) break;
    }
    done.store(true);
  });

  // Live serving while the writer expands: answer the query list once per
  // newly observed epoch.
  int64_t live_queries = 0;
  int64_t last_epoch = -2;
  while (!done.load()) {
    const int64_t epoch = server.current_epoch();
    if (epoch == last_epoch) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    last_epoch = epoch;
    for (const QueryPattern& pattern : patterns) {
      auto pin = server.PinNewest();
      if (pin.ok() && server.AnswerAt(pattern, *pin).ok()) ++live_queries;
    }
  }
  writer.join();
  if (runtime != nullptr) {
    // The writer is done with the workers. Detach before shutdown so a
    // later --verify-batch re-grounding runs on the in-process simulator
    // (bit-identical tables) instead of motioning through dead workers.
    if (mpp != nullptr) mpp->AttachRuntime(nullptr);
    runtime->Shutdown();
  }
  if (!writer_status.ok()) {
    // Snapshot isolation makes a dead writer non-fatal: readers keep the
    // last published epoch. Report it and serve what we have.
    std::fprintf(stderr, "expansion stopped: %s\n",
                 writer_status.ToString().c_str());
  }

  auto pin = server.PinNewest();
  if (!pin.ok()) {
    std::fprintf(stderr, "%s\n", pin.status().ToString().c_str());
    return 1;
  }
  std::printf("serving at epoch %lld (%lld atoms); %lld live queries "
              "answered during expansion\n",
              static_cast<long long>(pin->epoch),
              static_cast<long long>(rkb->t_pi->NumRows()),
              static_cast<long long>(live_queries));

  // Concurrent readers at one pinned epoch must agree bit-for-bit.
  const int readers = options.readers;
  std::vector<std::vector<ServeAnswer>> per_reader(
      static_cast<size_t>(readers));
  std::vector<Status> reader_status(static_cast<size_t>(readers),
                                    Status::OK());
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      for (const QueryPattern& pattern : patterns) {
        auto answer = server.AnswerAt(pattern, *pin);
        if (!answer.ok()) {
          reader_status[static_cast<size_t>(r)] = answer.status();
          return;
        }
        per_reader[static_cast<size_t>(r)].push_back(std::move(*answer));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int r = 0; r < readers; ++r) {
    if (!reader_status[static_cast<size_t>(r)].ok()) {
      std::fprintf(stderr, "reader %d: %s\n", r,
                   reader_status[static_cast<size_t>(r)].ToString().c_str());
      return 1;
    }
  }
  bool identical = true;
  for (int r = 1; r < readers && identical; ++r) {
    const auto& a = per_reader[0];
    const auto& b = per_reader[static_cast<size_t>(r)];
    if (a.size() != b.size()) {
      identical = false;
      break;
    }
    for (size_t q = 0; q < a.size() && identical; ++q) {
      if (a[q].entries.size() != b[q].entries.size() ||
          a[q].grounded_atoms != b[q].grounded_atoms) {
        identical = false;
        break;
      }
      for (size_t e = 0; e < a[q].entries.size(); ++e) {
        if (a[q].entries[e].id != b[q].entries[e].id ||
            a[q].entries[e].probability != b[q].entries[e].probability) {
          identical = false;
          break;
        }
      }
    }
  }
  std::printf("readers: %d concurrent, %s\n", readers,
              identical ? "bit-identical" : "MISMATCH");
  if (!identical) return 1;

  for (size_t q = 0; q < patterns.size(); ++q) {
    std::printf("query '%s'\n%s", options.queries[q].c_str(),
                per_reader[0][q].ToString().c_str());
  }

  if (options.verify_batch) {
    Result<TablePtr> t_phi =
        use_mpp ? mpp->GroundFactors() : grounder->GroundFactors();
    if (!t_phi.ok()) {
      std::fprintf(stderr, "%s\n", t_phi.status().ToString().c_str());
      return 1;
    }
    auto graph = FactorGraph::FromTables(*rkb->t_pi, **t_phi);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    std::vector<double> batch;
    if (graph->num_variables() <= 20) {
      auto exact = ExactMarginals(*graph, 20);
      if (!exact.ok()) {
        std::fprintf(stderr, "%s\n", exact.status().ToString().c_str());
        return 1;
      }
      batch = std::move(*exact);
    } else {
      GibbsOptions gibbs;
      gibbs.schedule = GibbsSchedule::kChromatic;
      gibbs.sample_sweeps = options.sweeps;
      auto sampled = GibbsMarginals(*graph, gibbs);
      if (!sampled.ok()) {
        std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
        return 1;
      }
      batch = std::move(sampled->marginals);
    }
    double max_diff = 0.0;
    int compared = 0;
    for (const std::vector<ServeAnswer>& answers : {per_reader[0]}) {
      for (const ServeAnswer& answer : answers) {
        for (const ServeAnswer::Entry& entry : answer.entries) {
          const int32_t v = graph->VariableOf(entry.id);
          if (v < 0) continue;
          const double diff = std::fabs(
              entry.probability - batch[static_cast<size_t>(v)]);
          if (diff > max_diff) max_diff = diff;
          ++compared;
        }
      }
    }
    const bool pass = max_diff <= options.tolerance;
    std::printf("serve-vs-batch: %d answers compared, max |delta| %.4f "
                "(tolerance %.4f) %s\n",
                compared, max_diff, options.tolerance,
                pass ? "PASS" : "FAIL");
    if (!pass) return 1;
  }

  if (options.stats) std::printf("%s", server.StatsText().c_str());
  if (metrics != nullptr && options.metrics_linger > 0.0) {
    std::printf("metrics socket %s lingering %.1fs\n",
                metrics->socket_path().c_str(), options.metrics_linger);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(
        options.metrics_linger));
  }
  return writer_status.ok() ? 0 : ExitCodeFor(writer_status);
}

int Run(const CliOptions& options) {
  auto kb = ParseMlnFile(options.program_path);
  if (!kb.ok()) {
    std::fprintf(stderr, "%s\n", kb.status().ToString().c_str());
    return 1;
  }
  if (options.command == "stats") {
    std::printf("%s\n", kb->StatsString().c_str());
    return 0;
  }

  if (options.rule_theta < 1.0) {
    *kb->mutable_rules() = TopThetaRules(kb->rules(), options.rule_theta);
    std::printf("rule cleaning kept %zu rules\n", kb->rules().size());
  }

  RelationalKB rkb = BuildRelationalModel(*kb);
  GroundingOptions grounding;
  grounding.max_iterations = options.iterations;
  grounding.apply_constraints_each_iteration = options.constraints;
  grounding.evaluation = options.semi_naive ? EvaluationMode::kSemiNaive
                                            : EvaluationMode::kNaive;
  grounding.deadline_seconds = options.deadline_seconds;
  grounding.max_rows_per_statement = options.max_rows;
  grounding.checkpoint_dir = options.checkpoint_dir;
  grounding.num_threads = options.num_threads;
  grounding.mem_budget_bytes = options.mem_budget;
  grounding.spill_dir = options.spill_dir;

  if (options.command == "serve") {
    return RunServe(options, *kb, &rkb, grounding);
  }

  // One registry per run collects operator/motion/partition stats; it is
  // only attached (and thus only fed) when some output was requested, so
  // the default path keeps its zero-instrumentation behavior.
  StatsRegistry registry;
  const bool want_stats = options.stats || !options.stats_json.empty() ||
                          registry.trace_enabled();
  auto emit_stats = [&]() -> int {
    if (!want_stats) return 0;
    if (options.stats) std::printf("%s", registry.ToText().c_str());
    if (!options.stats_json.empty()) {
      if (auto st = registry.WriteJsonFile(options.stats_json); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("wrote %s\n", options.stats_json.c_str());
    }
    if (auto st = registry.WriteTraceIfEnabled(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  };

  if (options.resume && options.checkpoint_dir.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint DIR\n");
    return 2;
  }

  // Budget failures degrade to a partial expansion: counters below say
  // which stage gave up, the dumps still happen, and the exit code tells
  // callers why the run stopped short.
  bool partial = false;
  std::string explain_text;
  Status stop_reason;
  int grounding_failures = 0;
  int factor_failures = 0;
  int iterations = 0;
  TablePtr t_phi = Table::Make(TPhiSchema());
  auto absorb_budget_failure = [&](const Status& st, int* failures) -> bool {
    if (!IsBudgetFailure(st.code())) return false;
    partial = true;
    stop_reason = st;
    ++*failures;
    return true;
  };

  if (options.num_segments > 0) {
    // MPP path: ground on the shared-nothing engine (ProbKB-p views plan)
    // and gather TPi back so the downstream stages see the same tables the
    // single-node grounder would produce. --runtime=process additionally
    // ships every motion through forked, supervised worker processes; if
    // the workers cannot spawn the run degrades to the in-process
    // simulator rather than failing.
    MppGrounder mpp(rkb, options.num_segments, MppMode::kViews, grounding);
    if (want_stats) mpp.set_stats_registry(&registry);
    std::unique_ptr<ProcessRuntime> runtime;
    if (ResolveRuntimeKind(options.runtime.empty()
                               ? nullptr
                               : options.runtime.c_str()) ==
        RuntimeKind::kProcess) {
      ProcessRuntimeOptions runtime_options;
      runtime_options.num_segments = options.num_segments;
      runtime = std::make_unique<ProcessRuntime>(runtime_options);
      if (auto st = runtime->Spawn(); !st.ok()) {
        PROBKB_SLOG(Runtime, Warning)
            << "process runtime unavailable ("
            << st.ToString() << "); degrading to the simulator";
        runtime.reset();
      } else {
        mpp.AttachRuntime(runtime.get());
      }
    }
    if (options.resume && GroundingCheckpointExists(options.checkpoint_dir)) {
      if (auto st = mpp.ResumeFrom(options.checkpoint_dir); !st.ok()) {
        std::fprintf(stderr, "resume: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("resumed from %s at iteration %d\n",
                  options.checkpoint_dir.c_str(), mpp.stats().iterations);
    }
    if (auto st = mpp.GroundAtoms();
        !st.ok() && !absorb_budget_failure(st, &grounding_failures)) {
      std::fprintf(stderr, "grounding: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!partial) {
      auto factors = mpp.GroundFactors();
      if (factors.ok()) {
        t_phi = factors.MoveValueOrDie();
      } else if (!absorb_budget_failure(factors.status(),
                                        &factor_failures)) {
        std::fprintf(stderr, "%s\n", factors.status().ToString().c_str());
        return 1;
      }
    }
    rkb.t_pi = mpp.GatherTPi();
    iterations = mpp.stats().iterations;
    if (options.explain_plans) explain_text = mpp.ExplainPlans();
    if (runtime != nullptr) {
      runtime->Shutdown();
      if (want_stats) {
        std::printf("%s\n", runtime->stats().ToString().c_str());
      }
    }
  } else {
    Grounder grounder(&rkb, grounding);
    if (want_stats) grounder.set_stats_registry(&registry);
    if (options.resume && GroundingCheckpointExists(options.checkpoint_dir)) {
      if (auto st = grounder.ResumeFrom(options.checkpoint_dir); !st.ok()) {
        std::fprintf(stderr, "resume: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("resumed from %s at iteration %d\n",
                  options.checkpoint_dir.c_str(),
                  grounder.stats().iterations);
    }
    if (auto st = grounder.GroundAtoms();
        !st.ok() && !absorb_budget_failure(st, &grounding_failures)) {
      std::fprintf(stderr, "grounding: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!partial) {
      auto factors = grounder.GroundFactors();
      if (factors.ok()) {
        t_phi = factors.MoveValueOrDie();
      } else if (!absorb_budget_failure(factors.status(),
                                        &factor_failures)) {
        std::fprintf(stderr, "%s\n", factors.status().ToString().c_str());
        return 1;
      }
    }
    iterations = grounder.stats().iterations;
    if (options.explain_plans) explain_text = grounder.ExplainPlans();
  }
  std::printf("grounded: %lld atoms, %lld factors, %d iterations%s\n",
              static_cast<long long>(rkb.t_pi->NumRows()),
              static_cast<long long>(t_phi->NumRows()),
              iterations, partial ? " (partial)" : "");
  if (options.explain_plans) std::printf("%s", explain_text.c_str());
  if (partial) {
    std::printf("partial expansion: %s\n",
                stop_reason.ToString().c_str());
    std::printf("stage failures: grounding %d, factor grounding %d\n",
                grounding_failures, factor_failures);
  }

  if (!options.tpi_out.empty()) {
    if (auto st = WriteTableTsvFile(*rkb.t_pi, options.tpi_out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.tpi_out.c_str());
  }
  if (!options.tphi_out.empty()) {
    if (auto st = WriteTableTsvFile(*t_phi, options.tphi_out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", options.tphi_out.c_str());
  }
  if (partial) {
    emit_stats();
    return ExitCodeFor(stop_reason);
  }
  if (options.command == "ground") return emit_stats();

  auto graph = FactorGraph::FromTables(*rkb.t_pi, *t_phi);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  if (options.command == "explain") {
    if (options.fact_query.empty()) {
      std::fprintf(stderr, "explain requires --fact 'relation(x, y)'\n");
      return 2;
    }
    for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
      std::string rendered =
          kb->FactToString(FactFromRow(rkb.t_pi->row(i)));
      if (rendered.find(options.fact_query) == std::string::npos) continue;
      int32_t v = graph->VariableOf(rkb.t_pi->row(i)[tpi::kI].i64());
      std::printf("%s\n",
                  graph
                      ->ExplainLineage(v, 6,
                                       [&](FactId id) {
                                         return DescribeFact(*kb, rkb, id);
                                       })
                      .c_str());
      return emit_stats();
    }
    std::fprintf(stderr, "no fact matching '%s'\n",
                 options.fact_query.c_str());
    return 1;
  }

  if (options.command != "infer") return Usage();
  if (options.map_inference) {
    auto map = IcmMap(*graph);
    if (!map.ok()) {
      std::fprintf(stderr, "%s\n", map.status().ToString().c_str());
      return 1;
    }
    std::printf("MAP log-score %.3f\n", map->log_score);
    for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
      int32_t v = graph->VariableOf(rkb.t_pi->row(i)[tpi::kI].i64());
      std::printf("  %d  %s\n",
                  map->assignment[static_cast<size_t>(v)],
                  kb->FactToString(FactFromRow(rkb.t_pi->row(i))).c_str());
    }
    return emit_stats();
  }
  GibbsOptions gibbs;
  gibbs.schedule = GibbsSchedule::kChromatic;
  gibbs.sample_sweeps = options.sweeps;
  // The sampler now reports its own chains (and a per-sweep latency
  // histogram) straight into the registry.
  if (want_stats) gibbs.stats = &registry;
  auto result = GibbsMarginals(*graph, gibbs);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return ExitCodeFor(result.status());
  }
  for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
    int32_t v = graph->VariableOf(rkb.t_pi->row(i)[tpi::kI].i64());
    std::printf("  P=%.3f  %s\n",
                result->marginals[static_cast<size_t>(v)],
                kb->FactToString(FactFromRow(rkb.t_pi->row(i))).c_str());
  }
  return emit_stats();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage();
  if (options.command != "stats" && options.command != "ground" &&
      options.command != "infer" && options.command != "explain" &&
      options.command != "serve") {
    return Usage();
  }
  SetLogLevel(ResolveLogLevel(
      options.log_level.empty() ? nullptr : options.log_level.c_str()));
  if (auto st = ResolveJsonLogSink(
          options.log_json.empty() ? nullptr : options.log_json.c_str());
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 2;
  }
  if (!ApplyCliTunables(options)) return 2;
  if (!CheckOutputPathCollisions(options)) return 2;
  if (!options.trace_jsonl.empty() || !options.trace_chrome.empty()) {
    Tracer::Global()->set_enabled(true);
  }

  const int code = Run(options);

  if (!options.trace_jsonl.empty()) {
    if (auto st = Tracer::Global()->WriteJsonl(options.trace_jsonl);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return code != 0 ? code : 1;
    }
    std::printf("wrote %s\n", options.trace_jsonl.c_str());
  }
  if (!options.trace_chrome.empty()) {
    if (auto st = Tracer::Global()->WriteChromeTrace(options.trace_chrome);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return code != 0 ? code : 1;
    }
    std::printf("wrote %s\n", options.trace_chrome.c_str());
  }

  // Flight-recorder post-mortem: the merged event timeline goes to stderr
  // whenever the pipeline exits non-OK (usage errors excluded — nothing
  // ran), and to --post_mortem FILE as JSON whenever one was requested.
  constexpr size_t kPostMortemEvents = 256;
  FlightRecorder* recorder = FlightRecorder::Global();
  if (code != 0 && code != 2) {
    std::fputs(recorder->DumpText(kPostMortemEvents).c_str(), stderr);
  }
  if (!options.post_mortem.empty()) {
    if (auto st = recorder->WriteDump(options.post_mortem); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return code != 0 ? code : 1;
    }
    std::printf("wrote %s\n", options.post_mortem.c_str());
  }
  return code;
}
