// probkb_top — live telemetry viewer for a running `probkb serve
// --metrics-socket PATH` process.
//
//   probkb_top SOCKET [--interval-ms N] [--iterations N] [--raw]
//
// Connects to the serve metrics socket, polls one Prometheus-text-format
// snapshot per interval over the runtime's checksummed wire framing
// (kMetricsRequest / kMetricsReply), and renders counters + latency
// quantiles as a compact table with per-interval rates. --raw dumps the
// Prometheus text verbatim instead (useful for piping into other tools).
//
// Exit codes: 0 success, 1 connection/protocol failure, 2 usage.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "runtime/wire.h"
#include "util/strings.h"
#include "util/timer.h"

namespace {

using namespace probkb;

int Usage() {
  std::fprintf(stderr,
               "usage: probkb_top SOCKET [--interval-ms N] "
               "[--iterations N] [--raw]\n"
               "  polls a `probkb serve --metrics-socket SOCKET` process\n"
               "  --interval-ms N  poll period (default 500)\n"
               "  --iterations N   polls before exiting (default 0 = "
               "forever)\n"
               "  --raw            print the Prometheus text verbatim\n");
  return 2;
}

/// One parsed snapshot: counters, per-series quantiles, and exemplars.
struct Snapshot {
  std::map<std::string, double> counters;  // bare metric name -> value
  /// series -> {quantile label -> seconds}.
  std::map<std::string, std::map<std::string, double>> quantiles;
  std::map<std::string, double> latency_counts;
  std::map<std::string, std::string> exemplars;  // series -> trace id hex
};

/// Pulls `key="value"` out of a Prometheus label set; empty if absent.
std::string LabelValue(const std::string& labels, const std::string& key) {
  const std::string needle = key + "=\"";
  const size_t at = labels.find(needle);
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  const size_t end = labels.find('"', begin);
  if (end == std::string::npos) return "";
  return labels.substr(begin, end - begin);
}

Snapshot Parse(const std::string& text) {
  Snapshot snap;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    std::string name = line.substr(0, sp);
    const double value = std::atof(line.c_str() + sp + 1);
    std::string labels;
    const size_t brace = name.find('{');
    if (brace != std::string::npos) {
      labels = name.substr(brace);
      name = name.substr(0, brace);
    }
    if (name == "probkb_latency_seconds") {
      snap.quantiles[LabelValue(labels, "series")]
                    [LabelValue(labels, "quantile")] = value;
    } else if (name == "probkb_latency_seconds_count") {
      snap.latency_counts[LabelValue(labels, "series")] = value;
    } else if (name == "probkb_latency_tail_exemplar_info") {
      snap.exemplars[LabelValue(labels, "series")] =
          LabelValue(labels, "trace_id");
    } else if (name == "probkb_latency_seconds_sum") {
      // rendered via counts + quantiles; skip
    } else {
      snap.counters[name] = value;
    }
  }
  return snap;
}

void Render(const Snapshot& snap, const Snapshot& prev, double seconds,
            int poll) {
  std::printf("── probkb_top poll %d ──\n", poll);
  std::printf("%-34s %14s %12s\n", "counter", "value", "rate/s");
  for (const auto& [name, value] : snap.counters) {
    double rate = 0.0;
    if (seconds > 0) {
      const auto it = prev.counters.find(name);
      const double before = it == prev.counters.end() ? 0.0 : it->second;
      rate = (value - before) / seconds;
    }
    std::printf("%-34s %14.0f %12.1f\n", name.c_str(), value, rate);
  }
  if (!snap.quantiles.empty()) {
    std::printf("%-22s %8s %10s %10s %10s %s\n", "latency series", "count",
                "p50_ms", "p95_ms", "p99_ms", "tail trace");
    for (const auto& [series, q] : snap.quantiles) {
      auto ms = [&](const char* label) {
        const auto it = q.find(label);
        return it == q.end() ? 0.0 : it->second * 1e3;
      };
      const auto count_it = snap.latency_counts.find(series);
      const auto ex_it = snap.exemplars.find(series);
      std::printf("%-22s %8.0f %10.3f %10.3f %10.3f %s\n", series.c_str(),
                  count_it == snap.latency_counts.end() ? 0.0
                                                        : count_it->second,
                  ms("0.5"), ms("0.95"), ms("0.99"),
                  ex_it == snap.exemplars.end() ? "-"
                                                : ex_it->second.c_str());
    }
  }
  std::fflush(stdout);
}

int Connect(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string socket_path = argv[1];
  int interval_ms = 500;
  int iterations = 0;
  bool raw = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
      if (interval_ms < 1) interval_ms = 1;
    } else if (flag == "--iterations" && i + 1 < argc) {
      iterations = std::atoi(argv[++i]);
    } else if (flag == "--raw") {
      raw = true;
    } else {
      return Usage();
    }
  }

  const int fd = Connect(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "probkb_top: cannot connect to %s\n",
                 socket_path.c_str());
    return 1;
  }

  Snapshot prev;
  Timer since_prev;
  int failures = 0;
  for (int poll = 1; iterations == 0 || poll <= iterations; ++poll) {
    if (auto st = wire::WriteFrame(fd, wire::FrameType::kMetricsRequest, -1,
                                   std::string_view());
        !st.ok()) {
      std::fprintf(stderr, "probkb_top: %s\n", st.ToString().c_str());
      ::close(fd);
      return 1;
    }
    Result<wire::Frame> reply = wire::ReadFrame(fd, 5.0);
    if (!reply.ok() || reply->type != wire::FrameType::kMetricsReply) {
      // One checksum mismatch is retryable (the frame was consumed); a
      // second failure or a dead peer ends the session.
      if (reply.ok() || ++failures > 1) {
        std::fprintf(stderr, "probkb_top: %s\n",
                     reply.ok() ? "unexpected frame type"
                                : reply.status().ToString().c_str());
        ::close(fd);
        return 1;
      }
      continue;
    }
    failures = 0;
    if (raw) {
      std::printf("%s", reply->payload.c_str());
      std::fflush(stdout);
    } else {
      const Snapshot snap = Parse(reply->payload);
      Render(snap, prev, since_prev.Seconds(), poll);
      prev = snap;
      since_prev = Timer();
    }
    if (iterations == 0 || poll < iterations) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  ::close(fd);
  return 0;
}
