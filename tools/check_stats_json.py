#!/usr/bin/env python3
"""Validates a ProbKB execution-stats JSON document.

Usage: check_stats_json.py STATS_JSON [TRACE_JSON]

Accepts either a bare StatsRegistry document (the probkb CLI's
``--stats_json`` output) or the table3_grounding wrapper
``{"bench": ..., "systems": {name: <registry>, ...}}``.

Checks per registry:
  * each statement's operator list, recorded in post-order with
    ``num_children``, reconstructs into a well-formed forest;
  * along every pipeline edge the parent's rows_in equals the sum of its
    children's rows_out (scan leaves read rows_in == rows_out == the table's
    row count, so the invariant holds recursively);
  * partition cells name partitions 1..6 with non-negative delta rows and
    join times;
  * motions ship non-negative tuple/byte counts.

With a TRACE_JSON argument the Chrome-trace file must parse and carry
non-negative complete events. Exits non-zero on the first violation.
"""

import json
import sys


def fail(msg):
    print(f"check_stats_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_statement_forest(scope, ops):
    """Rebuilds the post-order op list into trees, checking edge totals."""
    stack = []  # of (rows_out, label)
    for i, op in enumerate(ops):
        for key in ("label", "rows_in", "rows_out", "num_children"):
            if key not in op:
                fail(f"statement '{scope}' op {i} is missing '{key}'")
        n = op["num_children"]
        if n < 0:
            fail(f"statement '{scope}' op '{op['label']}' has "
                 f"num_children {n} < 0")
        if n > len(stack):
            fail(f"statement '{scope}' op '{op['label']}' wants {n} "
                 f"children but only {len(stack)} subtrees are open")
        if op["rows_in"] < 0 or op["rows_out"] < 0:
            fail(f"statement '{scope}' op '{op['label']}' has negative "
                 f"row counts")
        if n > 0:
            children = stack[len(stack) - n:]
            child_rows = sum(rows for rows, _ in children)
            if op["rows_in"] != child_rows:
                labels = ", ".join(label for _, label in children)
                fail(f"statement '{scope}' op '{op['label']}' reads "
                     f"rows_in={op['rows_in']} but its children "
                     f"[{labels}] produced {child_rows}")
            del stack[len(stack) - n:]
        stack.append((op["rows_out"], op["label"]))
    if not ops:
        return 0
    if not stack:
        fail(f"statement '{scope}' reconstructed to zero roots")
    return len(stack)


def check_registry(name, reg):
    for key in ("statements", "operators", "partitions", "motions"):
        if key not in reg:
            fail(f"registry '{name}' is missing the '{key}' section")

    edges = 0
    for st in reg["statements"]:
        check_statement_forest(st.get("scope", "?"), st["ops"])
        edges += sum(1 for op in st["ops"] if op["num_children"] > 0)

    for cell in reg["partitions"]:
        p = cell.get("partition", 0)
        if not 1 <= p <= 6:
            fail(f"registry '{name}' has partition {p} outside M1..M6")
        if cell.get("delta_rows", -1) < 0:
            fail(f"registry '{name}' iteration {cell.get('iteration')} "
                 f"M{p} has negative delta_rows")
        if cell.get("join_seconds", -1) < 0:
            fail(f"registry '{name}' iteration {cell.get('iteration')} "
                 f"M{p} has negative join_seconds")

    for m in reg["motions"]:
        if m.get("tuples_shipped", -1) < 0 or m.get("bytes_shipped", -1) < 0:
            fail(f"registry '{name}' motion '{m.get('label')}' ships "
                 f"negative volume")

    print(f"  {name}: {len(reg['statements'])} statements "
          f"({edges} checked edges), {len(reg['partitions'])} partition "
          f"cells, {len(reg['motions'])} motion labels: OK")


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"trace '{path}' has no traceEvents")
    for ev in events:
        if ev.get("ph") != "X":
            fail(f"trace '{path}' has a non-complete event: {ev}")
        if ev.get("ts", -1) < 0 or ev.get("dur", -1) < 0:
            fail(f"trace '{path}' has a negative timestamp: {ev}")
    print(f"  trace {path}: {len(events)} events: OK")


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)

    print(f"check_stats_json: {argv[1]}")
    if "systems" in doc:
        if not doc["systems"]:
            fail("wrapper document has an empty 'systems' map")
        for name, reg in doc["systems"].items():
            check_registry(name, reg)
    else:
        check_registry("stats", doc)

    if len(argv) == 3:
        check_trace(argv[2])
    print("check_stats_json: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
