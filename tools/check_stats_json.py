#!/usr/bin/env python3
"""Validates a ProbKB execution-stats JSON document or a span-tree dump.

Usage: check_stats_json.py [--require-spill] STATS_JSON [TRACE_JSON]
       check_stats_json.py --spans SPANS_JSONL

Accepts either a bare StatsRegistry document (the probkb CLI's
``--stats_json`` output) or the table3_grounding wrapper
``{"bench": ..., "systems": {name: <registry>, ...}}``.

Checks per registry:
  * each statement's operator list, recorded in post-order with
    ``num_children``, reconstructs into a well-formed forest;
  * along every pipeline edge the parent's rows_in equals the sum of its
    children's rows_out (scan leaves read rows_in == rows_out == the table's
    row count, so the invariant holds recursively);
  * partition cells name partitions 1..6 with non-negative delta rows and
    join times;
  * motions ship non-negative tuple/byte counts.

With a TRACE_JSON argument the Chrome-trace file must parse and carry
non-negative complete events.

``--require-spill`` additionally demands that at least one registry's
counter list reports ``spill_bytes_written > 0`` — the out-of-core CI
smoke uses it to prove a budgeted run really exercised the grace-hash
spill path instead of silently fitting in memory.

``--spans`` instead validates a distributed-trace JSONL dump (the probkb
CLI's ``--trace`` output): every non-root parent id must exist within the
span's trace, child intervals must nest inside their parents', worker
spans must not be orphans, and no (trace_id, span_id) pair may repeat.
Exits non-zero on the first violation.
"""

import json
import sys


def fail(msg):
    print(f"check_stats_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_statement_forest(scope, ops):
    """Rebuilds the post-order op list into trees, checking edge totals."""
    stack = []  # of (rows_out, label)
    for i, op in enumerate(ops):
        for key in ("label", "rows_in", "rows_out", "num_children"):
            if key not in op:
                fail(f"statement '{scope}' op {i} is missing '{key}'")
        n = op["num_children"]
        if n < 0:
            fail(f"statement '{scope}' op '{op['label']}' has "
                 f"num_children {n} < 0")
        if n > len(stack):
            fail(f"statement '{scope}' op '{op['label']}' wants {n} "
                 f"children but only {len(stack)} subtrees are open")
        if op["rows_in"] < 0 or op["rows_out"] < 0:
            fail(f"statement '{scope}' op '{op['label']}' has negative "
                 f"row counts")
        if n > 0:
            children = stack[len(stack) - n:]
            child_rows = sum(rows for rows, _ in children)
            if op["rows_in"] != child_rows:
                labels = ", ".join(label for _, label in children)
                fail(f"statement '{scope}' op '{op['label']}' reads "
                     f"rows_in={op['rows_in']} but its children "
                     f"[{labels}] produced {child_rows}")
            del stack[len(stack) - n:]
        stack.append((op["rows_out"], op["label"]))
    if not ops:
        return 0
    if not stack:
        fail(f"statement '{scope}' reconstructed to zero roots")
    return len(stack)


def check_registry(name, reg):
    for key in ("statements", "operators", "partitions", "motions"):
        if key not in reg:
            fail(f"registry '{name}' is missing the '{key}' section")

    edges = 0
    for st in reg["statements"]:
        check_statement_forest(st.get("scope", "?"), st["ops"])
        edges += sum(1 for op in st["ops"] if op["num_children"] > 0)

    for cell in reg["partitions"]:
        p = cell.get("partition", 0)
        if not 1 <= p <= 6:
            fail(f"registry '{name}' has partition {p} outside M1..M6")
        if cell.get("delta_rows", -1) < 0:
            fail(f"registry '{name}' iteration {cell.get('iteration')} "
                 f"M{p} has negative delta_rows")
        if cell.get("join_seconds", -1) < 0:
            fail(f"registry '{name}' iteration {cell.get('iteration')} "
                 f"M{p} has negative join_seconds")

    for m in reg["motions"]:
        if m.get("tuples_shipped", -1) < 0 or m.get("bytes_shipped", -1) < 0:
            fail(f"registry '{name}' motion '{m.get('label')}' ships "
                 f"negative volume")

    counters = {c.get("name"): c.get("value", 0)
                for c in reg.get("counters", [])}
    for cname, value in counters.items():
        if not isinstance(value, int) or value < 0:
            fail(f"registry '{name}' counter '{cname}' has a "
                 f"non-integral or negative value: {value!r}")

    print(f"  {name}: {len(reg['statements'])} statements "
          f"({edges} checked edges), {len(reg['partitions'])} partition "
          f"cells, {len(reg['motions'])} motion labels, "
          f"{len(counters)} counters: OK")
    return counters


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"trace '{path}' has no traceEvents")
    for ev in events:
        if ev.get("ph") != "X":
            fail(f"trace '{path}' has a non-complete event: {ev}")
        if ev.get("ts", -1) < 0 or ev.get("dur", -1) < 0:
            fail(f"trace '{path}' has a negative timestamp: {ev}")
    print(f"  trace {path}: {len(events)} events: OK")


def check_spans(path):
    """Validates a --trace JSONL span dump as one well-formed span forest."""
    spans = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"spans '{path}' line {lineno} is not JSON: {e}")
            for key in ("trace_id", "span_id", "parent_id", "name",
                        "category", "segment", "start_us", "dur_us"):
                if key not in span:
                    fail(f"spans '{path}' line {lineno} is missing '{key}'")
            spans.append(span)
    if not spans:
        fail(f"spans '{path}' is empty")

    by_id = {}
    for span in spans:
        key = (span["trace_id"], span["span_id"])
        if key in by_id:
            fail(f"duplicate span id {key[1]} in trace {key[0]} "
                 f"('{span['name']}' vs '{by_id[key]['name']}')")
        by_id[key] = span
        if span["start_us"] < 0 or span["dur_us"] < 0:
            fail(f"span '{span['name']}' ({key[1]}) has a negative "
                 f"interval: start_us={span['start_us']} "
                 f"dur_us={span['dur_us']}")

    root_id = "0" * 16
    workers = supervisor = checked_edges = 0
    for span in spans:
        if span["category"] == "worker":
            workers += 1
        else:
            supervisor += 1
        if span["parent_id"] == root_id:
            if span["category"] == "worker":
                fail(f"worker span '{span['name']}' "
                     f"({span['span_id']}) is an orphan: worker spans "
                     f"must parent under a supervisor span")
            continue
        parent = by_id.get((span["trace_id"], span["parent_id"]))
        if parent is None:
            fail(f"span '{span['name']}' ({span['span_id']}) names "
                 f"parent {span['parent_id']} which does not exist in "
                 f"trace {span['trace_id']}")
        lo, hi = parent["start_us"], parent["start_us"] + parent["dur_us"]
        start, end = span["start_us"], span["start_us"] + span["dur_us"]
        if start < lo or end > hi:
            fail(f"span '{span['name']}' ({span['span_id']}) interval "
                 f"[{start}, {end}] does not nest inside parent "
                 f"'{parent['name']}' [{lo}, {hi}]")
        checked_edges += 1

    traces = len({span["trace_id"] for span in spans})
    print(f"  spans {path}: {len(spans)} spans ({supervisor} supervisor, "
          f"{workers} worker) across {traces} traces, "
          f"{checked_edges} nesting edges: OK")


def main(argv):
    if len(argv) == 3 and argv[1] == "--spans":
        print(f"check_stats_json: {argv[2]}")
        check_spans(argv[2])
        print("check_stats_json: PASS")
        return 0
    require_spill = "--require-spill" in argv[1:]
    argv = [a for a in argv if a != "--require-spill"]
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)

    print(f"check_stats_json: {argv[1]}")
    spill_bytes = 0
    if "systems" in doc:
        if not doc["systems"]:
            fail("wrapper document has an empty 'systems' map")
        for name, reg in doc["systems"].items():
            counters = check_registry(name, reg)
            spill_bytes += counters.get("spill_bytes_written", 0)
    else:
        counters = check_registry("stats", doc)
        spill_bytes += counters.get("spill_bytes_written", 0)

    if require_spill:
        if spill_bytes <= 0:
            fail("--require-spill: no registry reported "
                 "spill_bytes_written > 0; the budgeted run never spilled "
                 "(budget too large for the workload?)")
        print(f"  --require-spill: {spill_bytes} spill bytes written: OK")

    if len(argv) == 3:
        check_trace(argv[2])
    print("check_stats_json: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
