// bench_report — perf-tracking harness for the threaded grounding engine.
//
//   bench_report [--json BENCH_parallel.json]
//
// Runs the table3-style grounding workload (single node) and the fig6c
// MPP-views workload at 1, 2, 4 and 8 worker threads, verifies that every
// thread count produces bit-identical outputs to the serial run, and
// writes a JSON document with the measured wall-clock times and speedups.
// CI keeps the JSON so thread-scaling regressions show up as diffs.
//
// Times here are *measured* engine seconds (no modelled per-statement
// overhead): thread scaling is about real compute, and the modelled
// overhead is thread-count independent by construction.
//
// `--out-of-core [FACTS]` appends a budgeted-grounding workload (default
// 200000 facts via ScaleKbFacts): an in-memory baseline measures the
// engine's transient peak-RSS delta, then the same grounding re-runs under
// a budget of a quarter of that delta. Gates: the budgeted TPi is
// bit-identical, the run actually spilled, and its peak-RSS delta stays
// within 1.2x the budget plus the output tables (output growth is product,
// not working set). The extra section only appears in the JSON when the
// flag is passed, so bench_compare baselines are unaffected.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/synthetic_kb.h"
#include "engine/ops.h"
#include "engine/tunables.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "obs/flight_recorder.h"
#include "obs/stats_registry.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using namespace probkb;

constexpr int kIterations = 4;
constexpr int kSegments = 32;
const std::vector<int> kThreadCounts = {1, 2, 4, 8};

struct ThreadPoint {
  int threads = 1;
  double seconds = 0;
  bool identical = false;  // output bit-identical to the serial run
};

struct WorkloadReport {
  std::string name;
  double serial_seconds = 0;
  /// Peak RSS of the serial run in bytes (high-water mark reset right
  /// before it where the kernel allows; whole-process peak otherwise).
  long long peak_rss_bytes = 0;
  /// Interconnect traffic and motion mix of the serial stats-on MPP run
  /// (all zero for single-node workloads). bench_compare gates
  /// shipped_bytes; the mix records which motions the planner chose so a
  /// plan flip is visible in the baseline diff.
  long long shipped_bytes = 0;
  long long broadcast_motions = 0;
  long long redistribute_motions = 0;
  std::vector<ThreadPoint> points;
  /// StatsRegistry::ToJson() of a serial stats-on run; "" when skipped.
  std::string breakdown;
};

/// hardware_concurrency() may legitimately return 0 ("unknown"); every
/// consumer here wants a positive count.
unsigned HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Single-node grounding: 4 iterations + factor construction, like
/// table3_grounding's ProbKB column. Returns the final TPi for the
/// equivalence check.
bool RunSingleNode(const KnowledgeBase& kb, int threads, double* seconds,
                   TablePtr* t_pi_out, StatsRegistry* stats) {
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions options;
  options.max_iterations = kIterations;
  options.num_threads = threads;
  Grounder grounder(&rkb, options);
  if (stats != nullptr) grounder.set_stats_registry(stats);
  Timer timer;
  for (int i = 0; i < kIterations; ++i) {
    if (!grounder.GroundAtomsIteration().ok()) return false;
  }
  if (!grounder.GroundFactors().ok()) return false;
  *seconds = timer.Seconds();
  *t_pi_out = rkb.t_pi;
  return true;
}

/// MPP grounding with views (fig6c's ProbKB-p configuration); the time is
/// real wall clock of the simulator, which is where the thread pool works.
bool RunMppViews(const KnowledgeBase& kb, int threads, double* seconds,
                 TablePtr* t_pi_out, StatsRegistry* stats) {
  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions options;
  options.max_iterations = kIterations;
  options.num_threads = threads;
  MppGrounder grounder(rkb, kSegments, MppMode::kViews, options);
  if (stats != nullptr) grounder.set_stats_registry(stats);
  Timer timer;
  for (int i = 0; i < kIterations; ++i) {
    if (!grounder.GroundAtomsIteration().ok()) return false;
  }
  if (!grounder.GroundFactors().ok()) return false;
  *seconds = timer.Seconds();
  *t_pi_out = grounder.GatherTPi();
  return true;
}

struct OutOfCoreReport {
  long long facts = 0;
  long long budget_bytes = 0;
  long long baseline_delta_bytes = 0;  // in-memory transient peak-RSS delta
  long long budgeted_delta_bytes = 0;  // same window under the budget
  long long output_bytes = 0;          // final TPi + TPhi (product, allowed)
  long long spill_bytes_written = 0;
  double baseline_seconds = 0;
  double budgeted_seconds = 0;
  bool identical = false;
  bool spilled = false;
  bool rss_ok = false;
};

/// Budgeted-grounding workload (see header comment). The peak-RSS window
/// opens *after* BuildRelationalModel so the deltas measure the engine's
/// working set, not the resident KB the budget deliberately excludes.
bool RunOutOfCore(const KnowledgeBase& kb, OutOfCoreReport* report) {
  report->facts = static_cast<long long>(kb.facts().size());
  GroundingOptions options;
  options.max_iterations = kIterations;
  options.num_threads = 1;
  options.mem_budget_bytes = 0;

  RelationalKB rkb_base = BuildRelationalModel(kb);
  Grounder baseline(&rkb_base, options);
  bench::TryResetPeakRss();
  const long long rss0 = bench::PeakRssBytes();
  Timer base_timer;
  if (!baseline.GroundAtoms().ok()) return false;
  auto phi_base = baseline.GroundFactors();
  if (!phi_base.ok()) return false;
  report->baseline_seconds = base_timer.Seconds();
  report->baseline_delta_bytes = bench::PeakRssBytes() - rss0;

  report->budget_bytes =
      std::max(report->baseline_delta_bytes / 4, 8LL << 20);

  RelationalKB rkb = BuildRelationalModel(kb);
  options.mem_budget_bytes = report->budget_bytes;
  StatsRegistry stats;
  Grounder budgeted(&rkb, options);
  budgeted.set_stats_registry(&stats);
  bench::TryResetPeakRss();
  const long long rss1 = bench::PeakRssBytes();
  Timer budget_timer;
  if (!budgeted.GroundAtoms().ok()) return false;
  auto phi = budgeted.GroundFactors();
  if (!phi.ok()) return false;
  report->budgeted_seconds = budget_timer.Seconds();
  report->budgeted_delta_bytes = bench::PeakRssBytes() - rss1;

  report->output_bytes = static_cast<long long>(rkb.t_pi->ByteSize()) +
                         static_cast<long long>((*phi)->ByteSize());
  report->spill_bytes_written = stats.FindCounter("spill_bytes_written");
  report->identical = TablesEqualExact(*rkb_base.t_pi, *rkb.t_pi) &&
                      TablesEqualExact(**phi_base, **phi);
  report->spilled = report->spill_bytes_written > 0;
  // The envelope the budget must hold: 1.2x the budget of join working
  // set, plus what any join must retain regardless of spilling — the
  // answer tables themselves and up to one transient copy of them while
  // the k-way merge drains leaf runs into the output (runs are freed as
  // they empty, capping the duplication at ~1x output). 8 MiB of
  // allocator slack covers glibc arena granularity at bench scales. The
  // budgeted peak must also undercut the unbudgeted peak outright, so the
  // envelope can never degenerate into a vacuous bound.
  report->rss_ok = report->budgeted_delta_bytes <=
                       static_cast<long long>(
                           1.2 * static_cast<double>(report->budget_bytes)) +
                           2 * report->output_bytes + (8LL << 20) &&
                   report->budgeted_delta_bytes < report->baseline_delta_bytes;
  return true;
}

template <typename RunFn>
bool RunWorkload(const std::string& name, const KnowledgeBase& kb,
                 RunFn run, WorkloadReport* report) {
  report->name = name;
  TablePtr serial_t_pi;
  bench::TryResetPeakRss();
  if (!run(kb, 1, &report->serial_seconds, &serial_t_pi)) {
    std::fprintf(stderr, "%s: serial run failed\n", name.c_str());
    return false;
  }
  report->peak_rss_bytes = bench::PeakRssBytes();
  for (int threads : kThreadCounts) {
    ThreadPoint point;
    point.threads = threads;
    TablePtr t_pi;
    if (!run(kb, threads, &point.seconds, &t_pi)) {
      std::fprintf(stderr, "%s: %d-thread run failed\n", name.c_str(),
                   threads);
      return false;
    }
    point.identical = TablesEqualExact(*serial_t_pi, *t_pi);
    if (!point.identical) {
      std::fprintf(stderr,
                   "%s: %d-thread output DIFFERS from the serial run\n",
                   name.c_str(), threads);
    }
    report->points.push_back(point);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = bench::JsonPathFromArgs(argc, argv);
  if (json_path.empty()) json_path = "BENCH_parallel.json";
  const double scale = bench::BenchScale();

  bench::PrintHeader("bench_report: thread scaling");
  std::printf("scale=%.3f, hardware threads=%u\n", scale,
              HardwareThreads());

  // Calibrated execution knobs: measure (or read from cache) this host's
  // serial-vs-parallel crossover so the bench numbers reflect what a tuned
  // deployment would see — on a 1-core host this disables fan-out
  // entirely, which is exactly the fig6c multi-thread fix. Env vars still
  // win over calibration.
  SetTunables(ApplyTunablesEnv(AutoTuneTunables()));
  std::printf("tunables: %s\n", GetTunables().ToString().c_str());

  SyntheticKbConfig config;
  config.scale = scale;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) {
    std::fprintf(stderr, "%s\n", skb.status().ToString().c_str());
    return 1;
  }

  auto single_node = [](const KnowledgeBase& kb, int threads,
                        double* seconds, TablePtr* t_pi) {
    return RunSingleNode(kb, threads, seconds, t_pi, nullptr);
  };
  auto mpp_views = [](const KnowledgeBase& kb, int threads, double* seconds,
                      TablePtr* t_pi) {
    return RunMppViews(kb, threads, seconds, t_pi, nullptr);
  };
  std::vector<WorkloadReport> reports(2);
  if (!RunWorkload("table3_grounding", skb->kb, single_node, &reports[0]) ||
      !RunWorkload("fig6c_mpp_views", skb->kb, mpp_views, &reports[1])) {
    return 1;
  }

  // Optional budgeted-grounding workload (see header comment).
  const bool want_oocore = bench::HasFlag(argc, argv, "--out-of-core");
  OutOfCoreReport oocore;
  if (want_oocore) {
    long long target_facts = 200000;
    const std::string arg = bench::ArgValue(argc, argv, "--out-of-core");
    if (!arg.empty() && arg.rfind("--", 0) != 0) {
      target_facts = std::atoll(arg.c_str());
    }
    KnowledgeBase scaled = skb->kb;
    if (auto st = ScaleKbFacts(&scaled, target_facts, config.seed + 1);
        !st.ok()) {
      std::fprintf(stderr, "--out-of-core: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!RunOutOfCore(scaled, &oocore)) {
      std::fprintf(stderr, "--out-of-core: budgeted run failed\n");
      return 1;
    }
  }

  // Stats overhead + per-workload breakdowns: a serial stats-off run and a
  // serial stats-on run back to back on the single-node workload measure
  // what the observability layer costs (budget: < 5%); the stats-on
  // registries become each workload's "breakdown" JSON section.
  double stats_off_seconds = 0.0;
  double stats_on_seconds = 0.0;
  StatsRegistry single_stats;
  StatsRegistry mpp_stats;
  {
    TablePtr ignored_t_pi;
    double ignored_seconds = 0.0;
    if (!RunSingleNode(skb->kb, 1, &stats_off_seconds, &ignored_t_pi,
                       nullptr) ||
        !RunSingleNode(skb->kb, 1, &stats_on_seconds, &ignored_t_pi,
                       &single_stats) ||
        !RunMppViews(skb->kb, 1, &ignored_seconds, &ignored_t_pi,
                     &mpp_stats)) {
      std::fprintf(stderr, "stats-overhead runs failed\n");
      return 1;
    }
  }
  reports[0].breakdown = single_stats.ToJson();
  reports[1].breakdown = mpp_stats.ToJson();
  for (const MotionTotals& motion : mpp_stats.motion_totals()) {
    reports[1].shipped_bytes += motion.bytes_shipped;
    if (motion.kind == "broadcast") {
      reports[1].broadcast_motions += motion.count;
    } else if (motion.kind == "redistribute") {
      reports[1].redistribute_motions += motion.count;
    }
  }
  const double overhead_pct =
      stats_off_seconds > 0
          ? (stats_on_seconds - stats_off_seconds) / stats_off_seconds * 100.0
          : 0.0;

  // Flight-recorder + structured-logging overhead on table3_grounding: a
  // serial run with the recorder killed vs one with the recorder on AND a
  // JSONL log sink attached (the worst supported observability config
  // short of PROBKB_TRACE). Budget: < 5%.
  double obs_off_seconds = 0.0;
  double obs_on_seconds = 0.0;
  {
    FlightRecorder* recorder = FlightRecorder::Global();
    const char* log_path = "BENCH_log.jsonl";
    TablePtr ignored_t_pi;
    recorder->set_enabled(false);
    bool ok = RunSingleNode(skb->kb, 1, &obs_off_seconds, &ignored_t_pi,
                            nullptr);
    recorder->set_enabled(true);
    recorder->Reset();
    ok = ok && EnableJsonLogSink(log_path).ok() &&
         RunSingleNode(skb->kb, 1, &obs_on_seconds, &ignored_t_pi, nullptr);
    DisableJsonLogSink();
    std::remove(log_path);
    if (!ok) {
      std::fprintf(stderr, "recorder-overhead runs failed\n");
      return 1;
    }
  }
  const double obs_overhead_pct =
      obs_off_seconds > 0
          ? (obs_on_seconds - obs_off_seconds) / obs_off_seconds * 100.0
          : 0.0;

  // Distributed-tracing overhead on table3_grounding: a serial run with
  // the tracer dark vs one recording the full span stream (what --trace
  // or --metrics-socket costs the engine). The trace-off run's TPi must
  // stay bit-identical to the baseline serial run — the dark tracer is a
  // couple of relaxed atomic loads on the hot path and nothing else.
  // Budget: < 5%.
  double trace_off_seconds = 0.0;
  double trace_on_seconds = 0.0;
  bool trace_off_identical = false;
  {
    Tracer* tracer = Tracer::Global();
    TablePtr trace_off_t_pi;
    TablePtr ignored_t_pi;
    tracer->set_enabled(false);
    bool ok = RunSingleNode(skb->kb, 1, &trace_off_seconds, &trace_off_t_pi,
                            nullptr);
    tracer->Reset();
    tracer->set_enabled(true);
    ok = ok && RunSingleNode(skb->kb, 1, &trace_on_seconds, &ignored_t_pi,
                             nullptr);
    tracer->set_enabled(false);
    tracer->Reset();
    if (!ok) {
      std::fprintf(stderr, "trace-overhead runs failed\n");
      return 1;
    }
    trace_off_identical = TablesEqualExact(*trace_off_t_pi, *ignored_t_pi);
    if (!trace_off_identical) {
      std::fprintf(stderr,
                   "trace-off output DIFFERS from the trace-on run\n");
    }
  }
  const double trace_overhead_pct =
      trace_off_seconds > 0
          ? (trace_on_seconds - trace_off_seconds) / trace_off_seconds * 100.0
          : 0.0;

  bool all_identical = true;
  for (const WorkloadReport& report : reports) {
    std::printf("\n%-18s serial %.3fs  peak RSS %.1f MiB\n",
                report.name.c_str(), report.serial_seconds,
                static_cast<double>(report.peak_rss_bytes) / (1024.0 * 1024.0));
    for (const ThreadPoint& point : report.points) {
      std::printf("  --threads %d: %.3fs  speedup %.2fx  %s\n",
                  point.threads, point.seconds,
                  point.seconds > 0 ? report.serial_seconds / point.seconds
                                    : 0.0,
                  point.identical ? "bit-identical" : "MISMATCH");
      all_identical = all_identical && point.identical;
    }
  }
  if (want_oocore) {
    const double mib = 1024.0 * 1024.0;
    std::printf(
        "\nout-of-core (%lld facts): baseline %.3fs, peak delta %.1f MiB; "
        "budget %.1f MiB -> budgeted %.3fs, peak delta %.1f MiB, "
        "%.1f MiB spilled\n"
        "  gates: %s, %s, %s\n",
        oocore.facts, oocore.baseline_seconds,
        static_cast<double>(oocore.baseline_delta_bytes) / mib,
        static_cast<double>(oocore.budget_bytes) / mib,
        oocore.budgeted_seconds,
        static_cast<double>(oocore.budgeted_delta_bytes) / mib,
        static_cast<double>(oocore.spill_bytes_written) / mib,
        oocore.identical ? "bit-identical" : "MISMATCH",
        oocore.spilled ? "spilled" : "NO SPILL",
        oocore.rss_ok ? "peak within budget envelope" : "PEAK OVER BUDGET");
    all_identical = all_identical && oocore.identical && oocore.spilled &&
                    oocore.rss_ok;
  }

  std::printf("\nstats overhead: off %.3fs, on %.3fs (%+.1f%%)\n",
              stats_off_seconds, stats_on_seconds, overhead_pct);
  std::printf("recorder+logging overhead: off %.3fs, on %.3fs (%+.1f%%)\n",
              obs_off_seconds, obs_on_seconds, obs_overhead_pct);
  std::printf("tracing+metrics overhead: off %.3fs, on %.3fs (%+.1f%%)  %s\n",
              trace_off_seconds, trace_on_seconds, trace_overhead_pct,
              trace_off_identical ? "bit-identical" : "MISMATCH");
  all_identical = all_identical && trace_off_identical;

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"bench_report\",\n  \"scale\": %g,\n"
               "  \"hardware_threads\": %u,\n"
               "  \"stats_overhead\": {\"off_seconds\": %g, "
               "\"on_seconds\": %g, \"overhead_pct\": %g},\n"
               "  \"obs_overhead\": {\"off_seconds\": %g, "
               "\"on_seconds\": %g, \"overhead_pct\": %g},\n"
               "  \"trace_overhead\": {\"off_seconds\": %g, "
               "\"on_seconds\": %g, \"overhead_pct\": %g, "
               "\"identical\": %s},\n"
               "  \"workloads\": [\n",
               scale, HardwareThreads(), stats_off_seconds, stats_on_seconds,
               overhead_pct, obs_off_seconds, obs_on_seconds,
               obs_overhead_pct, trace_off_seconds, trace_on_seconds,
               trace_overhead_pct, trace_off_identical ? "true" : "false");
  for (size_t i = 0; i < reports.size(); ++i) {
    const WorkloadReport& report = reports[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"serial_s\": %g, "
                 "\"peak_rss_bytes\": %lld, \"shipped_bytes\": %lld, "
                 "\"broadcast_motions\": %lld, "
                 "\"redistribute_motions\": %lld, \"points\": [\n",
                 report.name.c_str(), report.serial_seconds,
                 report.peak_rss_bytes, report.shipped_bytes,
                 report.broadcast_motions, report.redistribute_motions);
    for (size_t j = 0; j < report.points.size(); ++j) {
      const ThreadPoint& point = report.points[j];
      std::fprintf(f,
                   "      {\"threads\": %d, \"seconds\": %g, "
                   "\"speedup\": %g, \"identical\": %s}%s\n",
                   point.threads, point.seconds,
                   point.seconds > 0 ? report.serial_seconds / point.seconds
                                     : 0.0,
                   point.identical ? "true" : "false",
                   j + 1 == report.points.size() ? "" : ",");
    }
    std::fprintf(f, "    ],\n     \"breakdown\": %s}%s\n",
                 report.breakdown.empty() ? "null"
                                          : report.breakdown.c_str(),
                 i + 1 == reports.size() ? "" : ",");
  }
  std::fprintf(f, "  ]");
  if (want_oocore) {
    std::fprintf(f,
                 ",\n  \"out_of_core\": {\"facts\": %lld, "
                 "\"mem_budget_bytes\": %lld,\n"
                 "    \"baseline_seconds\": %g, "
                 "\"baseline_delta_bytes\": %lld,\n"
                 "    \"budgeted_seconds\": %g, "
                 "\"budgeted_delta_bytes\": %lld,\n"
                 "    \"output_bytes\": %lld, \"spill_bytes_written\": %lld,\n"
                 "    \"identical\": %s, \"spilled\": %s, \"rss_ok\": %s}",
                 oocore.facts, oocore.budget_bytes, oocore.baseline_seconds,
                 oocore.baseline_delta_bytes, oocore.budgeted_seconds,
                 oocore.budgeted_delta_bytes, oocore.output_bytes,
                 oocore.spill_bytes_written,
                 oocore.identical ? "true" : "false",
                 oocore.spilled ? "true" : "false",
                 oocore.rss_ok ? "true" : "false");
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  return all_identical ? 0 : 1;
}
