// External-engine handoff (Figure 1): ProbKB grounds inside the "DBMS" and
// hands the factor graph to a separate inference engine. This example
// plays both roles across a real serialization boundary: it grounds and
// exports TPi/TPhi as TSV, then — as the "inference engine" — reloads the
// tables from disk, rebuilds the factor graph, runs chromatic Gibbs, and
// ships the marginals back for write-back.
//
//   ./build/examples/external_inference [dir]

#include <cstdio>
#include <string>

#include "factor/factor_graph.h"
#include "grounding/grounder.h"
#include "infer/gibbs.h"
#include "infer/writeback.h"
#include "mln/parser.h"
#include "relational/table_io.h"
#include "tests/test_util.h"

int main(int argc, char** argv) {
  using namespace probkb;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string tpi_path = dir + "/probkb_tpi.tsv";
  const std::string tphi_path = dir + "/probkb_tphi.tsv";

  // --- Role 1: the database (grounding) --------------------------------------
  KnowledgeBase kb = testutil::BuildPaperExampleKB();
  RelationalKB rkb = BuildRelationalModel(kb);
  Grounder grounder(&rkb, GroundingOptions{});
  if (!grounder.GroundAtoms().ok()) return 1;
  auto t_phi = grounder.GroundFactors();
  if (!t_phi.ok()) return 1;
  if (!WriteTableTsvFile(*rkb.t_pi, tpi_path).ok() ||
      !WriteTableTsvFile(**t_phi, tphi_path).ok()) {
    std::fprintf(stderr, "export failed\n");
    return 1;
  }
  std::printf("exported %lld atoms -> %s\n         %lld factors -> %s\n",
              static_cast<long long>(rkb.t_pi->NumRows()), tpi_path.c_str(),
              static_cast<long long>((*t_phi)->NumRows()),
              tphi_path.c_str());

  // --- Role 2: the inference engine (separate process in production) ---------
  auto t_pi_in = ReadTableTsvFile(TPiSchema(), tpi_path);
  auto t_phi_in = ReadTableTsvFile(TPhiSchema(), tphi_path);
  if (!t_pi_in.ok() || !t_phi_in.ok()) {
    std::fprintf(stderr, "reload failed\n");
    return 1;
  }
  auto graph = FactorGraph::FromTables(**t_pi_in, **t_phi_in);
  if (!graph.ok()) return 1;
  GibbsOptions options;
  options.schedule = GibbsSchedule::kChromatic;
  options.num_chains = 2;
  options.burn_in_sweeps = 300;
  options.sample_sweeps = 3000;
  auto result = GibbsMarginals(*graph, options);
  if (!result.ok()) return 1;
  std::printf("inference: %d colors, R-hat %.3f, %.1fms\n",
              result->num_colors, result->max_psrf,
              result->seconds * 1e3);

  // --- Back in the database: write the marginals into the KB ------------------
  auto written =
      WriteMarginalsToTPi(t_pi_in->get(), *graph, result->marginals);
  if (!written.ok()) return 1;
  std::printf("wrote %lld marginals back; expanded KB:\n",
              static_cast<long long>(*written));
  for (int64_t i = 0; i < (*t_pi_in)->NumRows(); ++i) {
    RowView row = (*t_pi_in)->row(i);
    std::printf("  w=%.3f %s\n", row[tpi::kW].f64(),
                kb.FactToString(FactFromRow(row)).c_str());
  }
  return 0;
}
