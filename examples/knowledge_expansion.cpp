// Knowledge expansion at scale: generate a ReVerb-Sherlock-like KB with
// injected noise, apply ProbKB's quality control (semantic constraints +
// rule cleaning), ground in batches, and measure the precision of the
// expansion against the generator's ground truth — the Section 6.2
// workflow as a library client would run it.
//
//   ./build/examples/knowledge_expansion [scale]

#include <cstdio>
#include <cstdlib>

#include "datagen/synthetic_kb.h"
#include "factor/factor_graph.h"
#include "grounding/grounder.h"
#include "infer/gibbs.h"
#include "infer/writeback.h"
#include "kb/kb_query.h"
#include "quality/rule_cleaning.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace probkb;

  SyntheticKbConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  std::printf("Generating KB at %.1f%% of ReVerb-Sherlock scale...\n",
              config.scale * 100);
  Timer timer;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 skb.status().ToString().c_str());
    return 1;
  }
  std::printf("  %s  (%.2fs)\n", skb->kb.StatsString().c_str(),
              timer.Seconds());

  // --- Expansion without quality control ------------------------------------
  {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    GroundingOptions options;
    options.max_iterations = 10;
    Grounder grounder(&rkb, options);
    timer.Reset();
    if (auto st = grounder.GroundAtoms(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto report = EvaluateInferred(*rkb.t_pi, skb->truth);
    std::printf(
        "\nRaw expansion:       %6lld inferred facts, precision %.2f "
        "(%.2fs, %d iterations)\n",
        static_cast<long long>(report.inferred), report.precision,
        timer.Seconds(), grounder.stats().iterations);
  }

  // --- Expansion with ProbKB quality control ---------------------------------
  {
    KnowledgeBase kb = skb->kb;
    // Rule cleaning: keep the top-20% of rules by learner score.
    *kb.mutable_rules() = TopThetaRules(kb.rules(), 0.2);
    RelationalKB rkb = BuildRelationalModel(kb);
    GroundingOptions options;
    options.max_iterations = 15;
    options.apply_constraints_each_iteration = true;  // semantic constraints
    Grounder grounder(&rkb, options);
    // Clean the extracted facts once up front, as Section 6 does.
    if (auto deleted = grounder.ApplyConstraints(); deleted.ok()) {
      std::printf("\nConstraints removed %lld extracted facts up front\n",
                  static_cast<long long>(*deleted));
    }
    timer.Reset();
    if (auto st = grounder.GroundAtoms(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    auto report = EvaluateInferred(*rkb.t_pi, skb->truth);
    std::printf(
        "With quality control: %6lld inferred facts, precision %.2f "
        "(%.2fs, %d iterations, %lld facts deleted during inference)\n",
        static_cast<long long>(report.inferred), report.precision,
        timer.Seconds(), grounder.stats().iterations,
        static_cast<long long>(grounder.stats().constraint_deleted));

    // Run marginal inference and write the probabilities back into the KB
    // so queries answer without any inference-time computation (Sec 2.2).
    FactId first_inferred = static_cast<FactId>(kb.facts().size());
    auto phi = grounder.GroundFactors();
    if (!phi.ok()) return 1;
    auto graph = FactorGraph::FromTables(*rkb.t_pi, **phi);
    if (!graph.ok()) return 1;
    GibbsOptions gibbs;
    gibbs.schedule = GibbsSchedule::kChromatic;
    gibbs.num_chains = 2;
    gibbs.burn_in_sweeps = 50;
    gibbs.sample_sweeps = 300;
    auto marginals = GibbsMarginals(*graph, gibbs);
    if (!marginals.ok()) return 1;
    std::printf("\nGibbs: %d colors, R-hat %.3f\n", marginals->num_colors,
                marginals->max_psrf);
    auto written =
        WriteMarginalsToTPi(rkb.t_pi.get(), *graph, marginals->marginals);
    if (!written.ok()) return 1;

    // Query the expanded KB: highest-confidence inferred facts.
    KbQuery query(&kb, rkb.t_pi, first_inferred);
    std::printf("\nHighest-probability expansions:\n");
    int shown = 0;
    for (int64_t i = 0; i < rkb.t_pi->NumRows() && shown < 8; ++i) {
      RowView row = rkb.t_pi->row(i);
      if (row[tpi::kI].i64() < first_inferred) continue;
      Fact fact = FactFromRow(row);
      if (fact.weight < 0.6) continue;
      bool correct = skb->truth.IsTrue(fact.relation, fact.x, fact.y);
      std::printf("  P=%.2f %-55s %s\n", fact.weight,
                  kb.FactToString(fact).c_str(),
                  correct ? "[correct]" : "[wrong]");
      ++shown;
    }
  }
  return 0;
}
