// Quickstart: the whole ProbKB pipeline on the paper's running example
// (Table 1 of the SIGMOD'14 paper) — parse an MLN program, ground it with
// the batched SQL-style algorithm, build the factor graph, run marginal
// inference, and query lineage.
//
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "factor/factor_graph.h"
#include "grounding/grounder.h"
#include "infer/gibbs.h"
#include "mln/parser.h"

namespace {

constexpr const char* kProgram = R"(
// ReVerb-Sherlock running example.
class Writer
class City
class Place

0.96 born_in(Ruth_Gruber:Writer, New_York_City:City)
0.93 born_in(Ruth_Gruber:Writer, Brooklyn:Place)

1.40 live_in(x:Writer, y:Place) :- born_in(x, y)
1.53 live_in(x:Writer, y:City) :- born_in(x, y)
2.68 grow_up_in(x:Writer, y:Place) :- born_in(x, y)
0.74 grow_up_in(x:Writer, y:City) :- born_in(x, y)
0.32 located_in(x:Place, y:City) :- live_in(z:Writer, x), live_in(z, y)
0.52 located_in(x:Place, y:City) :- born_in(z:Writer, x), born_in(z, y)

functional born_in 1 1
)";

}  // namespace

int main() {
  using namespace probkb;

  // 1. Parse the MLN program into a probabilistic knowledge base.
  auto kb = ParseMln(kProgram);
  if (!kb.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 kb.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded KB: %s\n", kb->StatsString().c_str());

  // 2. Encode it relationally (TPi + the six MLN partition tables) and run
  //    the batched grounding algorithm to the fixpoint.
  RelationalKB rkb = BuildRelationalModel(*kb);
  Grounder grounder(&rkb, GroundingOptions{});
  if (auto st = grounder.GroundAtoms(); !st.ok()) {
    std::fprintf(stderr, "grounding failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto t_phi = grounder.GroundFactors();
  if (!t_phi.ok()) {
    std::fprintf(stderr, "groundFactors failed: %s\n",
                 t_phi.status().ToString().c_str());
    return 1;
  }
  std::printf("\nGrounding: %lld atoms (%lld inferred), %lld factors, "
              "%lld SQL-equivalent statements\n",
              static_cast<long long>(grounder.stats().final_atoms),
              static_cast<long long>(grounder.stats().final_atoms -
                                     grounder.stats().initial_atoms),
              static_cast<long long>((*t_phi)->NumRows()),
              static_cast<long long>(grounder.stats().statements));

  // 3. Marginal inference over the ground factor graph.
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **t_phi);
  if (!graph.ok()) {
    std::fprintf(stderr, "factor graph: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  GibbsOptions options;
  options.schedule = GibbsSchedule::kChromatic;
  options.burn_in_sweeps = 500;
  options.sample_sweeps = 5000;
  auto result = GibbsMarginals(*graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "inference: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nMarginals (chromatic Gibbs, %d colors):\n",
              result->num_colors);
  for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
    RowView row = rkb.t_pi->row(i);
    int32_t v = graph->VariableOf(row[tpi::kI].i64());
    std::printf("  P = %.3f  %s%s\n",
                result->marginals[static_cast<size_t>(v)],
                kb->FactToString(FactFromRow(row)).c_str(),
                row[tpi::kW].is_null() ? "   [inferred]" : "");
  }

  // 4. Lineage: why do we believe located_in(Brooklyn, New_York_City)?
  RelationId located = kb->relations().Lookup("located_in");
  for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
    RowView row = rkb.t_pi->row(i);
    if (row[tpi::kR].i64() != located) continue;
    int32_t v = graph->VariableOf(row[tpi::kI].i64());
    auto describe = [&](FactId id) -> std::string {
      for (int64_t j = 0; j < rkb.t_pi->NumRows(); ++j) {
        if (rkb.t_pi->row(j)[tpi::kI].i64() == id) {
          return kb->FactToString(FactFromRow(rkb.t_pi->row(j)));
        }
      }
      return "?";
    };
    std::printf("\nLineage of the inferred fact:\n%s",
                graph->ExplainLineage(v, 4, describe).c_str());
  }
  return 0;
}
