// Lineage audit (Sections 4.2.3 and 5): expand a noisy KB, find the
// entities that violate functional constraints, classify the error source
// of each using the factor graph's lineage, and walk the derivation tree
// of a propagated error — the workflow a KB curator would use to debug an
// expansion.
//
//   ./build/examples/lineage_audit [scale]

#include <cstdio>
#include <cstdlib>

#include "datagen/synthetic_kb.h"
#include "factor/factor_graph.h"
#include "grounding/grounder.h"
#include "quality/error_analysis.h"

int main(int argc, char** argv) {
  using namespace probkb;

  SyntheticKbConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 skb.status().ToString().c_str());
    return 1;
  }
  const KnowledgeBase& kb = skb->kb;
  std::printf("KB: %s\n", kb.StatsString().c_str());

  RelationalKB rkb = BuildRelationalModel(kb);
  GroundingOptions options;
  options.max_iterations = 4;
  Grounder grounder(&rkb, options);
  if (!grounder.GroundAtoms().ok()) return 1;
  auto t_phi = grounder.GroundFactors();
  if (!t_phi.ok()) return 1;
  auto graph = FactorGraph::FromTables(*rkb.t_pi, **t_phi);
  if (!graph.ok()) return 1;

  // Find constraint violators (without deleting) and classify them.
  ExecContext ec;
  auto violators = FindConstraintViolators(rkb.t_pi, rkb.t_omega, &ec);
  if (!violators.ok()) return 1;
  auto classified =
      ClassifyViolators(**violators, *rkb.t_pi, rkb.t_omega.get(), &*graph,
                        skb->truth.labels);
  auto distribution = ErrorSourceDistribution(classified);

  std::printf("\n%lld entities violate functional constraints; sources:\n",
              static_cast<long long>((*violators)->NumRows()));
  for (const auto& [source, fraction] : distribution) {
    std::printf("  %-26s %5.1f%%\n", ErrorSourceToString(source),
                fraction * 100);
  }

  // Walk the lineage of one inferred fact keyed by a violating entity.
  auto describe = [&](FactId id) -> std::string {
    for (int64_t j = 0; j < rkb.t_pi->NumRows(); ++j) {
      if (rkb.t_pi->row(j)[tpi::kI].i64() == id) {
        return kb.FactToString(FactFromRow(rkb.t_pi->row(j)));
      }
    }
    return "?";
  };
  for (const auto& violator : classified) {
    if (violator.source != ErrorSource::kAmbiguousJoinKey) continue;
    // Locate an inferred fact whose subject is the violator.
    for (int64_t i = 0; i < rkb.t_pi->NumRows(); ++i) {
      RowView row = rkb.t_pi->row(i);
      if (!row[tpi::kW].is_null()) continue;
      if (row[tpi::kX].i64() != violator.entity) continue;
      int32_t v = graph->VariableOf(row[tpi::kI].i64());
      if (graph->DerivationsOf(v).empty()) continue;
      std::printf(
          "\nDerivation of a fact inferred through an ambiguous join key\n"
          "(cf. Figure 5(a)'s propagated-error chains):\n%s",
          graph->ExplainLineage(v, 4, describe).c_str());
      return 0;
    }
  }
  std::printf("\n(no ambiguous-join-key propagation found at this scale)\n");
  return 0;
}
