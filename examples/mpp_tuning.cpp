// MPP tuning walk-through (Section 4.4): run the same grounding workload
// on the shared-nothing simulator under three configurations — single
// node, MPP without redistributed materialized views (ProbKB-pn), and MPP
// with them (ProbKB-p) — and show where the interconnect time goes,
// reproducing the Figure 4 / Example 5 story.
//
//   ./build/examples/mpp_tuning [scale] [segments]

#include <cstdio>
#include <cstdlib>

#include "datagen/synthetic_kb.h"
#include "grounding/grounder.h"
#include "grounding/mpp_grounder.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace probkb;

  SyntheticKbConfig config;
  config.scale = argc > 1 ? std::atof(argv[1]) : 0.02;
  const int segments = argc > 2 ? std::atoi(argv[2]) : 32;

  auto skb = GenerateReverbSherlockKb(config);
  if (!skb.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 skb.status().ToString().c_str());
    return 1;
  }
  std::printf("KB: %s\n\n", skb->kb.StatsString().c_str());

  GroundingOptions options;
  options.max_iterations = 4;

  // Single node (PostgreSQL-like).
  {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    Grounder grounder(&rkb, options);
    Timer timer;
    if (!grounder.GroundAtoms().ok() || !grounder.GroundFactors().ok()) {
      return 1;
    }
    std::printf("ProbKB    (single node): %.3fs measured, %lld factors\n",
                timer.Seconds(),
                static_cast<long long>(grounder.stats().factors));
  }

  // MPP, both modes.
  for (MppMode mode : {MppMode::kNoViews, MppMode::kViews}) {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    MppGrounder grounder(rkb, segments, mode, options);
    if (!grounder.GroundAtoms().ok() || !grounder.GroundFactors().ok()) {
      return 1;
    }
    const MppCost& cost = grounder.cost();
    double motion = 0;
    int64_t broadcast_tuples = 0;
    for (const auto& step : cost.steps()) {
      if (step.kind != MppStep::Kind::kCompute) motion += step.seconds;
      if (step.kind == MppStep::Kind::kBroadcast) {
        broadcast_tuples += step.tuples_shipped;
      }
    }
    std::printf(
        "%s (%2d segments):  %.3fs simulated (%.3fs interconnect, "
        "%lld tuples shipped, %lld by broadcast)\n",
        mode == MppMode::kViews ? "ProbKB-p  " : "ProbKB-pn ", segments,
        cost.simulated_seconds(), motion,
        static_cast<long long>(cost.tuples_shipped()),
        static_cast<long long>(broadcast_tuples));
  }

  // Figure-4-style plan trace for one partition-3 query under each mode.
  std::printf("\nPlan trace, first iteration (ProbKB-p):\n");
  {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    MppGrounder grounder(rkb, segments, MppMode::kViews, options);
    auto added = grounder.GroundAtomsIteration();
    if (!added.ok()) return 1;
    int shown = 0;
    for (const auto& step : grounder.cost().steps()) {
      std::printf("  %s\n", step.ToString().c_str());
      if (++shown == 12) break;
    }
  }
  std::printf("\nPlan trace, first iteration (ProbKB-pn):\n");
  {
    RelationalKB rkb = BuildRelationalModel(skb->kb);
    MppGrounder grounder(rkb, segments, MppMode::kNoViews, options);
    auto added = grounder.GroundAtomsIteration();
    if (!added.ok()) return 1;
    int shown = 0;
    for (const auto& step : grounder.cost().steps()) {
      std::printf("  %s\n", step.ToString().c_str());
      if (++shown == 12) break;
    }
  }
  return 0;
}
